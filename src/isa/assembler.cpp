#include "isa/assembler.hpp"

#include <sstream>

#include "common/bitutil.hpp"
#include "common/strings.hpp"

namespace warp::isa {
namespace {

using common::Result;
using common::format;
using common::parse_int;
using common::split;
using common::trim;

// Software multiply: standard shift-and-add. Arguments in r5/r6, result in
// r3, clobbers r5..r7 and r15 — the calling convention mb-gcc uses for
// libgcc helpers. Uses only instructions available on a minimal core.
constexpr const char* kMulRoutine = R"(
__mulsi3:
  add r3, r0, r0
__mulsi3_loop:
  beq r6, __mulsi3_done
  andi r7, r6, 1
  beq r7, __mulsi3_skip
  add r3, r3, r5
__mulsi3_skip:
  add r5, r5, r5
  srl r6, r6
  br __mulsi3_loop
__mulsi3_done:
  rtsd r15, 0
)";

// Software divide (unsigned restoring division on magnitudes, sign fixed
// up at the end). r3 = r5 / r6; clobbers r4..r9 and r15.
constexpr const char* kDivRoutine = R"(
__divsi3:
  add r9, r0, r0       ; r9 = sign flag
  bge r5, __divsi3_p1
  sub r5, r0, r5
  xori r9, r9, 1
__divsi3_p1:
  bge r6, __divsi3_p2
  sub r6, r0, r6
  xori r9, r9, 1
__divsi3_p2:
  add r3, r0, r0       ; quotient
  add r4, r0, r0       ; remainder
  addi r8, r0, 32      ; bit counter
__divsi3_loop:
  beq r8, __divsi3_fix
  add r4, r4, r4       ; rem <<= 1
  blt r5, __divsi3_msb1
  br __divsi3_msb0
__divsi3_msb1:
  ori r4, r4, 1
__divsi3_msb0:
  add r5, r5, r5       ; num <<= 1
  add r3, r3, r3       ; quo <<= 1
  cmpu r7, r4, r6      ; rem < den ?
  blt r7, __divsi3_next
  sub r4, r4, r6
  ori r3, r3, 1
__divsi3_next:
  addi r8, r8, -1
  br __divsi3_loop
__divsi3_fix:
  beq r9, __divsi3_ret
  sub r3, r0, r3
__divsi3_ret:
  rtsd r15, 0
)";

// Variable left shift: r3 = r5 << r6 (r6 masked to 5 bits); clobbers r5..r6, r15.
constexpr const char* kShlRoutine = R"(
__lshl:
  andi r6, r6, 31
  add r3, r5, r0
__lshl_loop:
  beq r6, __lshl_done
  add r3, r3, r3
  addi r6, r6, -1
  br __lshl_loop
__lshl_done:
  rtsd r15, 0
)";

// Variable logical right shift: r3 = r5 >> r6; clobbers r5..r6, r15.
constexpr const char* kShrRoutine = R"(
__lshr:
  andi r6, r6, 31
  add r3, r5, r0
__lshr_loop:
  beq r6, __lshr_done
  srl r3, r3
  addi r6, r6, -1
  br __lshr_loop
__lshr_done:
  rtsd r15, 0
)";

struct Line {
  std::string text;
  int source_line;
};

// One expanded item: either a real instruction, a label, or a data word.
struct Item {
  enum class Kind { kInstr, kLabel, kWord } kind = Kind::kInstr;
  std::string mnemonic;                 // for kInstr
  std::vector<std::string> operands;    // for kInstr
  std::string label;                    // for kLabel
  std::uint32_t word = 0;               // for kWord
  int source_line = 0;
};

class Assembler {
 public:
  explicit Assembler(const CpuConfig& config) : config_(config) {}

  Result<Program> run(std::string_view source) {
    std::vector<Line> lines = to_lines(source);
    // Macro expansion may request runtime routines; append and re-expand them.
    if (!expand_all(lines)) return Result<Program>::error(error_);
    for (const auto& name : needed_runtime()) {
      std::vector<Line> extra = to_lines(runtime_source(name));
      if (!expand_all(extra)) return Result<Program>::error(error_);
    }
    if (!assign_addresses()) return Result<Program>::error(error_);
    if (!emit()) return Result<Program>::error(error_);
    Program prog;
    prog.words = std::move(words_);
    prog.symbols = labels_;
    for (const auto& [name, value] : equs_) prog.symbols.emplace(name, value);
    prog.config = config_;
    return prog;
  }

 private:
  static std::vector<Line> to_lines(std::string_view source) {
    std::vector<Line> lines;
    int n = 0;
    std::size_t start = 0;
    while (start <= source.size()) {
      const auto pos = source.find('\n', start);
      const auto end = (pos == std::string_view::npos) ? source.size() : pos;
      ++n;
      std::string_view raw = source.substr(start, end - start);
      const auto comment = raw.find_first_of(";#");
      if (comment != std::string_view::npos) raw = raw.substr(0, comment);
      raw = trim(raw);
      if (!raw.empty()) lines.push_back({std::string(raw), n});
      if (pos == std::string_view::npos) break;
      start = pos + 1;
    }
    return lines;
  }

  bool fail(int line, const std::string& msg) {
    error_ = format("line %d: %s", line, msg.c_str());
    return false;
  }

  std::vector<std::string> needed_runtime() {
    std::vector<std::string> out;
    if (need_mul_) out.push_back("__mulsi3");
    if (need_div_) out.push_back("__divsi3");
    if (need_shl_) out.push_back("__lshl");
    if (need_shr_) out.push_back("__lshr");
    return out;
  }

  static std::string runtime_source(const std::string& name) {
    if (name == "__mulsi3") return kMulRoutine;
    if (name == "__divsi3") return kDivRoutine;
    if (name == "__lshl") return kShlRoutine;
    return kShrRoutine;
  }

  bool expand_all(const std::vector<Line>& lines) {
    for (const auto& line : lines) {
      if (!expand_line(line)) return false;
    }
    return true;
  }

  bool expand_line(const Line& line) {
    std::string_view text = line.text;
    // Labels (possibly followed by an instruction on the same line).
    while (true) {
      const auto colon = text.find(':');
      if (colon == std::string_view::npos) break;
      const std::string_view candidate = trim(text.substr(0, colon));
      if (candidate.find_first_of(" \t,") != std::string_view::npos) break;
      Item item;
      item.kind = Item::Kind::kLabel;
      item.label = std::string(candidate);
      item.source_line = line.source_line;
      items_.push_back(std::move(item));
      text = trim(text.substr(colon + 1));
      if (text.empty()) return true;
    }

    const auto ws = text.find_first_of(" \t");
    std::string mnem(text.substr(0, ws == std::string_view::npos ? text.size() : ws));
    std::string rest = (ws == std::string_view::npos)
                           ? std::string()
                           : std::string(trim(text.substr(ws)));
    std::vector<std::string> ops;
    for (auto piece : split(rest, ",")) ops.emplace_back(trim(piece));

    // Directives.
    if (mnem == ".equ") {
      if (ops.size() != 2) return fail(line.source_line, ".equ needs name, value");
      long long value;
      if (!parse_int(ops[1], value)) return fail(line.source_line, ".equ value must be integer");
      equs_[ops[0]] = static_cast<std::uint32_t>(value);
      return true;
    }
    if (mnem == ".word") {
      if (ops.size() != 1) return fail(line.source_line, ".word needs one value");
      long long value;
      if (!parse_int(ops[0], value)) return fail(line.source_line, ".word value must be integer");
      Item item;
      item.kind = Item::Kind::kWord;
      item.word = static_cast<std::uint32_t>(value);
      item.source_line = line.source_line;
      items_.push_back(std::move(item));
      return true;
    }
    if (mnem == ".space") {
      if (ops.size() != 1) return fail(line.source_line, ".space needs word count");
      long long count;
      if (!parse_int(ops[0], count)) return fail(line.source_line, ".space count must be integer");
      for (long long i = 0; i < count; ++i) {
        Item item;
        item.kind = Item::Kind::kWord;
        item.source_line = line.source_line;
        items_.push_back(std::move(item));
      }
      return true;
    }

    return expand_instruction(mnem, ops, line.source_line);
  }

  void push(const std::string& mnem, std::vector<std::string> ops, int line) {
    Item item;
    item.kind = Item::Kind::kInstr;
    item.mnemonic = mnem;
    item.operands = std::move(ops);
    item.source_line = line;
    items_.push_back(std::move(item));
  }

  // Lower pseudo-instructions according to the processor configuration.
  bool expand_instruction(const std::string& mnem, const std::vector<std::string>& ops,
                          int line) {
    auto op_count = [&](std::size_t n) {
      if (ops.size() != n) {
        fail(line, format("'%s' expects %zu operands, got %zu", mnem.c_str(), n, ops.size()));
        return false;
      }
      return true;
    };

    if (mnem == "nop") {
      push("or", {"r0", "r0", "r0"}, line);
      return true;
    }
    if (mnem == "mv") {
      if (!op_count(2)) return false;
      push("add", {ops[0], ops[1], "r0"}, line);
      return true;
    }
    if (mnem == "inc") {
      if (!op_count(1)) return false;
      push("addi", {ops[0], ops[0], "1"}, line);
      return true;
    }
    if (mnem == "dec") {
      if (!op_count(1)) return false;
      push("addi", {ops[0], ops[0], "-1"}, line);
      return true;
    }
    if (mnem == "call") {
      if (!op_count(1)) return false;
      push("brl", {"r15", ops[0]}, line);
      return true;
    }
    if (mnem == "ret") {
      push("rtsd", {"r15", "0"}, line);
      return true;
    }
    // Large-immediate ALU forms: emit the imm prefix when needed, exactly
    // like mb-gcc does for 32-bit constants.
    if (mnem == "addil" || mnem == "andil" || mnem == "oril" || mnem == "xoril") {
      if (!op_count(3)) return false;
      const std::string real = mnem.substr(0, mnem.size() - 1);  // drop the 'l'
      long long value;
      if (parse_int(ops[2], value) && common::fits_signed(value, 16)) {
        push(real, {ops[0], ops[1], ops[2]}, line);
      } else {
        push("imm", {"%hi:" + ops[2]}, line);
        push(real, {ops[0], ops[1], "%lo:" + ops[2]}, line);
      }
      return true;
    }
    if (mnem == "muli_p") {
      if (!op_count(3)) return false;
      if (config_.has_multiplier) {
        long long value;
        if (parse_int(ops[2], value) && common::fits_signed(value, 16)) {
          push("muli", {ops[0], ops[1], ops[2]}, line);
        } else {
          push("imm", {"%hi:" + ops[2]}, line);
          push("muli", {ops[0], ops[1], "%lo:" + ops[2]}, line);
        }
        return true;
      }
      need_mul_ = true;
      push("add", {"r5", ops[1], "r0"}, line);
      long long value;
      if (parse_int(ops[2], value) && common::fits_signed(value, 16)) {
        push("addi", {"r6", "r0", ops[2]}, line);
      } else {
        push("imm", {"%hi:" + ops[2]}, line);
        push("addi", {"r6", "r0", "%lo:" + ops[2]}, line);
      }
      push("brl", {"r15", "__mulsi3"}, line);
      push("add", {ops[0], "r3", "r0"}, line);
      return true;
    }
    if (mnem == "li" || mnem == "la") {
      if (!op_count(2)) return false;
      long long value;
      if (parse_int(ops[1], value) && common::fits_signed(value, 16)) {
        push("addi", {ops[0], "r0", ops[1]}, line);
      } else {
        // 32-bit constant (or symbol, resolved later): imm prefix + addi.
        push("imm", {"%hi:" + ops[1]}, line);
        push("addi", {ops[0], "r0", "%lo:" + ops[1]}, line);
      }
      return true;
    }
    if (mnem == "shl_i" || mnem == "shr_i" || mnem == "sar_i") {
      if (!op_count(3)) return false;
      long long n;
      if (!parse_int(ops[2], n) || n < 0 || n > 31) {
        return fail(line, "shift amount must be a literal in [0,31]");
      }
      if (config_.has_barrel_shifter) {
        const char* hw = mnem == "shl_i" ? "bslli" : (mnem == "shr_i" ? "bsrli" : "bsrai");
        push(hw, {ops[0], ops[1], ops[2]}, line);
        return true;
      }
      // No barrel shifter: n-step expansion (paper, Section 2).
      if (mnem == "shl_i") {
        push("add", {ops[0], ops[1], "r0"}, line);
        for (long long i = 0; i < n; ++i) push("add", {ops[0], ops[0], ops[0]}, line);
      } else {
        const char* one = mnem == "shr_i" ? "srl" : "sra";
        if (n == 0) {
          push("add", {ops[0], ops[1], "r0"}, line);
        } else {
          push(one, {ops[0], ops[1]}, line);
          for (long long i = 1; i < n; ++i) push(one, {ops[0], ops[0]}, line);
        }
      }
      return true;
    }
    if (mnem == "shl_r" || mnem == "shr_r") {
      if (!op_count(3)) return false;
      if (config_.has_barrel_shifter) {
        push(mnem == "shl_r" ? "bsll" : "bsrl", {ops[0], ops[1], ops[2]}, line);
        return true;
      }
      const char* routine = mnem == "shl_r" ? "__lshl" : "__lshr";
      (mnem == "shl_r" ? need_shl_ : need_shr_) = true;
      push("add", {"r5", ops[1], "r0"}, line);
      push("add", {"r6", ops[2], "r0"}, line);
      push("brl", {"r15", routine}, line);
      push("add", {ops[0], "r3", "r0"}, line);
      return true;
    }
    if (mnem == "mul_p") {
      if (!op_count(3)) return false;
      if (config_.has_multiplier) {
        push("mul", {ops[0], ops[1], ops[2]}, line);
        return true;
      }
      need_mul_ = true;
      push("add", {"r5", ops[1], "r0"}, line);
      push("add", {"r6", ops[2], "r0"}, line);
      push("brl", {"r15", "__mulsi3"}, line);
      push("add", {ops[0], "r3", "r0"}, line);
      return true;
    }
    if (mnem == "div_p") {
      if (!op_count(3)) return false;
      if (config_.has_divider) {
        push("idiv", {ops[0], ops[1], ops[2]}, line);
        return true;
      }
      need_div_ = true;
      push("add", {"r5", ops[1], "r0"}, line);
      push("add", {"r6", ops[2], "r0"}, line);
      push("brl", {"r15", "__divsi3"}, line);
      push("add", {ops[0], "r3", "r0"}, line);
      return true;
    }

    // A real instruction: validate mnemonic now, resolve operands later.
    if (!opcode_from_mnemonic(mnem)) {
      return fail(line, "unknown mnemonic '" + mnem + "'");
    }
    push(mnem, ops, line);
    return true;
  }

  bool assign_addresses() {
    std::uint32_t addr = 0;
    for (auto& item : items_) {
      switch (item.kind) {
        case Item::Kind::kLabel:
          if (labels_.count(item.label)) {
            return fail(item.source_line, "duplicate label '" + item.label + "'");
          }
          labels_[item.label] = addr;
          break;
        case Item::Kind::kInstr:
        case Item::Kind::kWord:
          addresses_.push_back(addr);
          addr += 4;
          break;
      }
    }
    return true;
  }

  // Resolve an operand to an integer value (registers handled separately).
  bool resolve_value(const std::string& operand, int line, std::int64_t& out) {
    std::string_view s = operand;
    bool hi = false, lo = false;
    if (common::starts_with(s, "%hi:")) { hi = true; s.remove_prefix(4); }
    else if (common::starts_with(s, "%lo:")) { lo = true; s.remove_prefix(4); }

    std::int64_t base = 0;
    std::int64_t offset = 0;
    const auto plus = s.find('+');
    std::string_view sym = (plus == std::string_view::npos) ? s : s.substr(0, plus);
    if (plus != std::string_view::npos) {
      long long off;
      if (!parse_int(s.substr(plus + 1), off)) return fail(line, "bad offset in '" + operand + "'");
      offset = off;
    }
    long long literal;
    if (parse_int(sym, literal)) {
      base = literal;
    } else {
      const std::string name(trim(sym));
      if (auto it = labels_.find(name); it != labels_.end()) base = it->second;
      else if (auto it2 = equs_.find(name); it2 != equs_.end()) base = it2->second;
      else return fail(line, "undefined symbol '" + name + "'");
    }
    std::int64_t value = base + offset;
    if (hi) value = (value >> 16) & 0xFFFF;
    if (lo) value = value & 0xFFFF;
    out = value;
    return true;
  }

  static bool parse_register(const std::string& operand, unsigned& reg) {
    if (operand.size() < 2 || (operand[0] != 'r' && operand[0] != 'R')) return false;
    long long n;
    if (!parse_int(operand.substr(1), n) || n < 0 || n >= kNumRegisters) return false;
    reg = static_cast<unsigned>(n);
    return true;
  }

  bool want_register(const std::string& op, int line, std::uint8_t& out) {
    unsigned reg;
    if (!parse_register(op, reg)) return fail(line, "expected register, got '" + op + "'");
    out = static_cast<std::uint8_t>(reg);
    return true;
  }

  bool want_imm16(const std::string& op, int line, std::int32_t& out, bool pc_relative,
                  std::uint32_t pc) {
    std::int64_t value;
    if (!resolve_value(op, line, value)) return false;
    if (pc_relative) value -= pc;
    // %hi/%lo-masked values are raw 16-bit fields; others must fit signed 16.
    const bool masked = common::starts_with(op, "%hi:") || common::starts_with(op, "%lo:");
    if (!masked && !common::fits_signed(value, 16)) {
      return fail(line, format("immediate %lld does not fit in 16 bits", (long long)value));
    }
    out = static_cast<std::int32_t>(common::sign_extend(static_cast<std::uint32_t>(value), 16));
    return true;
  }

  bool emit() {
    std::size_t index = 0;  // index into addresses_
    for (const auto& item : items_) {
      if (item.kind == Item::Kind::kLabel) continue;
      const std::uint32_t pc = addresses_[index++];
      if (item.kind == Item::Kind::kWord) {
        words_.push_back(item.word);
        continue;
      }
      const auto opcode = opcode_from_mnemonic(item.mnemonic);
      if (!opcode) return fail(item.source_line, "unknown mnemonic '" + item.mnemonic + "'");
      Instr instr;
      instr.op = *opcode;
      const auto& ops = item.operands;
      const int line = item.source_line;
      auto arity = [&](std::size_t n) {
        if (ops.size() != n) {
          fail(line, format("'%s' expects %zu operands, got %zu", item.mnemonic.c_str(), n,
                            ops.size()));
          return false;
        }
        return true;
      };

      switch (instr.op) {
        case Opcode::kHalt:
          if (!arity(0)) return false;
          break;
        case Opcode::kImm:
          if (!arity(1)) return false;
          if (!want_imm16(ops[0], line, instr.imm, false, pc)) return false;
          break;
        case Opcode::kBr:
          if (!arity(1)) return false;
          if (!want_imm16(ops[0], line, instr.imm, true, pc)) return false;
          break;
        case Opcode::kBrl:
          if (!arity(2)) return false;
          if (!want_register(ops[0], line, instr.rd)) return false;
          if (!want_imm16(ops[1], line, instr.imm, true, pc)) return false;
          break;
        case Opcode::kBrr:
          if (!arity(1)) return false;
          if (!want_register(ops[0], line, instr.ra)) return false;
          break;
        case Opcode::kRtsd:
          if (!arity(2)) return false;
          if (!want_register(ops[0], line, instr.ra)) return false;
          if (!want_imm16(ops[1], line, instr.imm, false, pc)) return false;
          break;
        case Opcode::kBeq: case Opcode::kBne: case Opcode::kBlt:
        case Opcode::kBle: case Opcode::kBgt: case Opcode::kBge:
          if (!arity(2)) return false;
          if (!want_register(ops[0], line, instr.ra)) return false;
          if (!want_imm16(ops[1], line, instr.imm, true, pc)) return false;
          break;
        case Opcode::kSext8: case Opcode::kSext16: case Opcode::kSrl: case Opcode::kSra:
          if (!arity(2)) return false;
          if (!want_register(ops[0], line, instr.rd)) return false;
          if (!want_register(ops[1], line, instr.ra)) return false;
          break;
        default:
          if (!arity(3)) return false;
          if (!want_register(ops[0], line, instr.rd)) return false;
          if (!want_register(ops[1], line, instr.ra)) return false;
          if (has_immediate(instr.op)) {
            if (!want_imm16(ops[2], line, instr.imm, false, pc)) return false;
          } else {
            if (!want_register(ops[2], line, instr.rb)) return false;
          }
          break;
      }

      if (requires_barrel_shifter(instr.op) && !config_.has_barrel_shifter) {
        return fail(line, "barrel-shifter instruction on a core without one");
      }
      if (requires_multiplier(instr.op) && !config_.has_multiplier) {
        return fail(line, "multiply instruction on a core without a multiplier");
      }
      if (requires_divider(instr.op) && !config_.has_divider) {
        return fail(line, "divide instruction on a core without a divider");
      }
      words_.push_back(encode(instr));
    }
    return true;
  }

  CpuConfig config_;
  std::vector<Item> items_;
  std::vector<std::uint32_t> addresses_;
  std::unordered_map<std::string, std::uint32_t> labels_;
  std::unordered_map<std::string, std::uint32_t> equs_;
  std::vector<std::uint32_t> words_;
  std::string error_;
  bool need_mul_ = false;
  bool need_div_ = false;
  bool need_shl_ = false;
  bool need_shr_ = false;
};

}  // namespace

std::uint32_t Program::label(const std::string& name) const {
  const auto it = symbols.find(name);
  if (it == symbols.end()) throw common::InternalError("undefined label: " + name);
  return it->second;
}

std::string Program::disassembly() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < words.size(); ++i) {
    const std::uint32_t pc = static_cast<std::uint32_t>(i * 4);
    os << common::format("%04x: %08x  ", pc, words[i]) << disassemble(words[i], pc) << '\n';
  }
  return os.str();
}

common::Result<Program> assemble(std::string_view source, const CpuConfig& config) {
  Assembler assembler(config);
  return assembler.run(source);
}

}  // namespace warp::isa
