// MicroBlaze-subset instruction-set architecture.
//
// The warp-processing study operates on *binaries*: the profiler watches
// instruction addresses, and ROCPART decompiles machine code back into a
// control/data-flow graph. This module defines the binary format everything
// else consumes.
//
// The ISA mirrors the MicroBlaze features the paper depends on:
//  - 32 general registers, r0 hard-wired to zero, r15 used as link register;
//  - Harvard memory (separate instruction/data BRAM address spaces);
//  - an IMM prefix instruction supplying the upper 16 bits of the next
//    instruction's immediate (the MicroBlaze mechanism for 32-bit constants);
//  - configurable barrel shifter (bsll/bsrl/bsra), multiplier (mul) and
//    divider (idiv): when a unit is absent the assembler lowers the
//    operation to software, exactly as mb-gcc does (Section 2 of the paper);
//  - per-class instruction latencies of the 3-stage MicroBlaze pipeline
//    (ALU 1 cycle, mul 3, load/store 2, taken branch 3 / not-taken 1).
//
// Encoding (fixed 32-bit words):
//   [31:26] opcode   [25:21] rd   [20:16] ra   [15:11] rb   (register form)
//   [31:26] opcode   [25:21] rd   [20:16] ra   [15:0]  imm16 (immediate form)
// Simplifications relative to the real MicroBlaze encoding are documented in
// DESIGN.md; the decompiler uses only this binary format, no side channel.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace warp::isa {

inline constexpr unsigned kNumRegisters = 32;
inline constexpr unsigned kLinkRegister = 15;   // r15 holds return addresses
inline constexpr unsigned kStackRegister = 1;   // r1 is the stack pointer
inline constexpr unsigned kRetValRegister = 3;  // r3 holds return values
inline constexpr unsigned kArg0Register = 5;    // r5..r10 carry arguments

enum class Opcode : std::uint8_t {
  // Arithmetic.
  kAdd, kAddi, kSub, kMul, kMuli, kIdiv,
  // Logic.
  kAnd, kAndi, kOr, kOri, kXor, kXori,
  // Sign extension.
  kSext8, kSext16,
  // Single-bit shifts (always present, as on MicroBlaze).
  kSrl, kSra,
  // Barrel-shifter instructions (present only when configured).
  kBsll, kBsrl, kBsra, kBslli, kBsrli, kBsrai,
  // Compares: rd = -1/0/+1 (signed / unsigned).
  kCmp, kCmpu,
  // Memory: register-indexed (addr = ra + rb) and immediate (addr = ra + imm).
  kLw, kLwi, kSw, kSwi, kLbu, kLbui, kSb, kSbi, kLhu, kLhui, kSh, kShi,
  // Branches: compare ra against zero, PC-relative byte offset in imm16.
  kBeq, kBne, kBlt, kBle, kBgt, kBge,
  // Unconditional control flow.
  kBr,    // pc += imm
  kBrl,   // rd = pc + 4; pc += imm  (call)
  kBrr,   // pc = ra                 (indirect jump)
  kRtsd,  // pc = ra + imm           (return)
  // Immediate prefix: latches imm16 as the upper half of the next imm.
  kImm,
  // Stop simulation.
  kHalt,
  kOpcodeCount,
};

/// Coarse classes used by the timing, energy, and ARM-comparison models.
enum class InstrClass : std::uint8_t {
  kAlu, kShift, kMul, kDiv, kLoad, kStore, kBranch, kJump, kImmPrefix, kHalt,
};

/// A decoded instruction.
struct Instr {
  Opcode op = Opcode::kHalt;
  std::uint8_t rd = 0;
  std::uint8_t ra = 0;
  std::uint8_t rb = 0;
  std::int32_t imm = 0;  // sign-extended 16-bit field

  bool operator==(const Instr&) const = default;
};

/// MicroBlaze configurable options (Section 2 of the paper). The assembler
/// consults this when lowering pseudo-instructions, and the simulator traps
/// if a binary uses an instruction whose unit is absent.
struct CpuConfig {
  bool has_barrel_shifter = true;
  bool has_multiplier = true;
  bool has_divider = false;
  double clock_mhz = 85.0;  // MicroBlaze on Spartan3 (paper, Section 4)

  static CpuConfig full() { return CpuConfig{true, true, true, 85.0}; }
  static CpuConfig minimal() { return CpuConfig{false, false, false, 85.0}; }
};

/// Encode a decoded instruction into a 32-bit word.
std::uint32_t encode(const Instr& instr);

/// Decode a 32-bit word. Returns std::nullopt for invalid opcodes.
std::optional<Instr> decode(std::uint32_t word);

/// Mnemonic for an opcode ("add", "bslli", ...).
std::string_view mnemonic(Opcode op);

/// Opcode for a mnemonic; nullopt if unknown.
std::optional<Opcode> opcode_from_mnemonic(std::string_view m);

/// Classify for the timing/energy models.
InstrClass classify(Opcode op);

/// True for conditional branches (beq..bge).
bool is_conditional_branch(Opcode op);
/// True for any instruction that can change the PC.
bool is_control_flow(Opcode op);
/// True for loads/stores.
bool is_memory(Opcode op);
/// True if the instruction uses the imm16 field.
bool has_immediate(Opcode op);
/// True if executing this opcode requires the given optional unit.
bool requires_barrel_shifter(Opcode op);
bool requires_multiplier(Opcode op);
bool requires_divider(Opcode op);
/// True if the instruction writes register rd.
bool writes_rd(Opcode op);
/// True if the instruction reads ra / rb.
bool reads_ra(Opcode op);
bool reads_rb(Opcode op);

/// Human-readable disassembly of one instruction word at address `pc`
/// (pc is used to render branch targets as absolute addresses).
std::string disassemble(std::uint32_t word, std::uint32_t pc);

/// Cycle cost of one instruction on the 3-stage MicroBlaze pipeline.
/// `taken` matters only for branches (taken 3 cycles, not-taken 1); the
/// assembler never fills delay slots, matching the paper's observation that
/// most branches cost more than one cycle.
unsigned latency_cycles(Opcode op, bool taken);

}  // namespace warp::isa
