#include "isa/isa.hpp"

#include <array>
#include <unordered_map>

#include "common/bitutil.hpp"
#include "common/strings.hpp"

namespace warp::isa {
namespace {

using common::bits;
using common::set_bits;
using common::sign_extend;

struct OpInfo {
  Opcode op;
  const char* name;
  InstrClass cls;
};

constexpr std::array<OpInfo, static_cast<std::size_t>(Opcode::kOpcodeCount)> kOpInfo = {{
    {Opcode::kAdd, "add", InstrClass::kAlu},
    {Opcode::kAddi, "addi", InstrClass::kAlu},
    {Opcode::kSub, "sub", InstrClass::kAlu},
    {Opcode::kMul, "mul", InstrClass::kMul},
    {Opcode::kMuli, "muli", InstrClass::kMul},
    {Opcode::kIdiv, "idiv", InstrClass::kDiv},
    {Opcode::kAnd, "and", InstrClass::kAlu},
    {Opcode::kAndi, "andi", InstrClass::kAlu},
    {Opcode::kOr, "or", InstrClass::kAlu},
    {Opcode::kOri, "ori", InstrClass::kAlu},
    {Opcode::kXor, "xor", InstrClass::kAlu},
    {Opcode::kXori, "xori", InstrClass::kAlu},
    {Opcode::kSext8, "sext8", InstrClass::kAlu},
    {Opcode::kSext16, "sext16", InstrClass::kAlu},
    {Opcode::kSrl, "srl", InstrClass::kShift},
    {Opcode::kSra, "sra", InstrClass::kShift},
    {Opcode::kBsll, "bsll", InstrClass::kShift},
    {Opcode::kBsrl, "bsrl", InstrClass::kShift},
    {Opcode::kBsra, "bsra", InstrClass::kShift},
    {Opcode::kBslli, "bslli", InstrClass::kShift},
    {Opcode::kBsrli, "bsrli", InstrClass::kShift},
    {Opcode::kBsrai, "bsrai", InstrClass::kShift},
    {Opcode::kCmp, "cmp", InstrClass::kAlu},
    {Opcode::kCmpu, "cmpu", InstrClass::kAlu},
    {Opcode::kLw, "lw", InstrClass::kLoad},
    {Opcode::kLwi, "lwi", InstrClass::kLoad},
    {Opcode::kSw, "sw", InstrClass::kStore},
    {Opcode::kSwi, "swi", InstrClass::kStore},
    {Opcode::kLbu, "lbu", InstrClass::kLoad},
    {Opcode::kLbui, "lbui", InstrClass::kLoad},
    {Opcode::kSb, "sb", InstrClass::kStore},
    {Opcode::kSbi, "sbi", InstrClass::kStore},
    {Opcode::kLhu, "lhu", InstrClass::kLoad},
    {Opcode::kLhui, "lhui", InstrClass::kLoad},
    {Opcode::kSh, "sh", InstrClass::kStore},
    {Opcode::kShi, "shi", InstrClass::kStore},
    {Opcode::kBeq, "beq", InstrClass::kBranch},
    {Opcode::kBne, "bne", InstrClass::kBranch},
    {Opcode::kBlt, "blt", InstrClass::kBranch},
    {Opcode::kBle, "ble", InstrClass::kBranch},
    {Opcode::kBgt, "bgt", InstrClass::kBranch},
    {Opcode::kBge, "bge", InstrClass::kBranch},
    {Opcode::kBr, "br", InstrClass::kJump},
    {Opcode::kBrl, "brl", InstrClass::kJump},
    {Opcode::kBrr, "brr", InstrClass::kJump},
    {Opcode::kRtsd, "rtsd", InstrClass::kJump},
    {Opcode::kImm, "imm", InstrClass::kImmPrefix},
    {Opcode::kHalt, "halt", InstrClass::kHalt},
}};

}  // namespace

std::uint32_t encode(const Instr& instr) {
  std::uint32_t w = 0;
  w = set_bits(w, 26, 6, static_cast<std::uint32_t>(instr.op));
  w = set_bits(w, 21, 5, instr.rd);
  w = set_bits(w, 16, 5, instr.ra);
  if (has_immediate(instr.op)) {
    w = set_bits(w, 0, 16, static_cast<std::uint32_t>(instr.imm));
  } else {
    w = set_bits(w, 11, 5, instr.rb);
  }
  return w;
}

std::optional<Instr> decode(std::uint32_t word) {
  const std::uint32_t opfield = bits(word, 26, 6);
  if (opfield >= static_cast<std::uint32_t>(Opcode::kOpcodeCount)) return std::nullopt;
  Instr instr;
  instr.op = static_cast<Opcode>(opfield);
  instr.rd = static_cast<std::uint8_t>(bits(word, 21, 5));
  instr.ra = static_cast<std::uint8_t>(bits(word, 16, 5));
  if (has_immediate(instr.op)) {
    instr.rb = 0;
    instr.imm = sign_extend(bits(word, 0, 16), 16);
  } else {
    instr.rb = static_cast<std::uint8_t>(bits(word, 11, 5));
    instr.imm = 0;
  }
  return instr;
}

std::string_view mnemonic(Opcode op) {
  return kOpInfo[static_cast<std::size_t>(op)].name;
}

std::optional<Opcode> opcode_from_mnemonic(std::string_view m) {
  static const auto* kMap = [] {
    auto* map = new std::unordered_map<std::string_view, Opcode>();
    for (const auto& info : kOpInfo) map->emplace(info.name, info.op);
    return map;
  }();
  const auto it = kMap->find(m);
  if (it == kMap->end()) return std::nullopt;
  return it->second;
}

InstrClass classify(Opcode op) { return kOpInfo[static_cast<std::size_t>(op)].cls; }

bool is_conditional_branch(Opcode op) { return classify(op) == InstrClass::kBranch; }

bool is_control_flow(Opcode op) {
  const InstrClass c = classify(op);
  return c == InstrClass::kBranch || c == InstrClass::kJump || c == InstrClass::kHalt;
}

bool is_memory(Opcode op) {
  const InstrClass c = classify(op);
  return c == InstrClass::kLoad || c == InstrClass::kStore;
}

bool has_immediate(Opcode op) {
  switch (op) {
    case Opcode::kAddi: case Opcode::kMuli: case Opcode::kAndi: case Opcode::kOri:
    case Opcode::kXori: case Opcode::kBslli: case Opcode::kBsrli: case Opcode::kBsrai:
    case Opcode::kLwi: case Opcode::kSwi: case Opcode::kLbui: case Opcode::kSbi:
    case Opcode::kLhui: case Opcode::kShi:
    case Opcode::kBeq: case Opcode::kBne: case Opcode::kBlt: case Opcode::kBle:
    case Opcode::kBgt: case Opcode::kBge:
    case Opcode::kBr: case Opcode::kBrl: case Opcode::kRtsd: case Opcode::kImm:
      return true;
    default:
      return false;
  }
}

bool requires_barrel_shifter(Opcode op) {
  switch (op) {
    case Opcode::kBsll: case Opcode::kBsrl: case Opcode::kBsra:
    case Opcode::kBslli: case Opcode::kBsrli: case Opcode::kBsrai:
      return true;
    default:
      return false;
  }
}

bool requires_multiplier(Opcode op) {
  return op == Opcode::kMul || op == Opcode::kMuli;
}

bool requires_divider(Opcode op) { return op == Opcode::kIdiv; }

bool writes_rd(Opcode op) {
  switch (classify(op)) {
    case InstrClass::kAlu: case InstrClass::kShift: case InstrClass::kMul:
    case InstrClass::kDiv: case InstrClass::kLoad:
      return true;
    case InstrClass::kJump:
      return op == Opcode::kBrl;
    default:
      return false;
  }
}

bool reads_ra(Opcode op) {
  switch (op) {
    case Opcode::kBr: case Opcode::kBrl: case Opcode::kImm: case Opcode::kHalt:
      return false;
    default:
      return true;
  }
}

bool reads_rb(Opcode op) {
  if (has_immediate(op)) return false;
  switch (op) {
    case Opcode::kSext8: case Opcode::kSext16: case Opcode::kSrl: case Opcode::kSra:
    case Opcode::kBrr: case Opcode::kHalt:
      return false;
    // Register-form stores read the value from rd as well; rb is the index.
    default:
      return true;
  }
}

std::string disassemble(std::uint32_t word, std::uint32_t pc) {
  const auto decoded = decode(word);
  if (!decoded) return common::format(".word 0x%08x", word);
  const Instr& i = *decoded;
  const char* m = kOpInfo[static_cast<std::size_t>(i.op)].name;
  switch (i.op) {
    case Opcode::kHalt:
      return m;
    case Opcode::kImm:
      return common::format("%s 0x%x", m, static_cast<std::uint16_t>(i.imm));
    case Opcode::kBr:
      return common::format("%s 0x%x", m, pc + static_cast<std::uint32_t>(i.imm));
    case Opcode::kBrl:
      return common::format("%s r%d, 0x%x", m, i.rd, pc + static_cast<std::uint32_t>(i.imm));
    case Opcode::kBrr:
      return common::format("%s r%d", m, i.ra);
    case Opcode::kRtsd:
      return common::format("%s r%d, %d", m, i.ra, i.imm);
    case Opcode::kBeq: case Opcode::kBne: case Opcode::kBlt:
    case Opcode::kBle: case Opcode::kBgt: case Opcode::kBge:
      return common::format("%s r%d, 0x%x", m, i.ra, pc + static_cast<std::uint32_t>(i.imm));
    case Opcode::kSext8: case Opcode::kSext16: case Opcode::kSrl: case Opcode::kSra:
      return common::format("%s r%d, r%d", m, i.rd, i.ra);
    default:
      if (has_immediate(i.op)) {
        return common::format("%s r%d, r%d, %d", m, i.rd, i.ra, i.imm);
      }
      return common::format("%s r%d, r%d, r%d", m, i.rd, i.ra, i.rb);
  }
}

unsigned latency_cycles(Opcode op, bool taken) {
  switch (classify(op)) {
    case InstrClass::kAlu:
    case InstrClass::kShift:
    case InstrClass::kImmPrefix:
      return 1;
    case InstrClass::kMul:
      return 3;  // MicroBlaze multiply: 3 cycles (paper, Section 2)
    case InstrClass::kDiv:
      return 32;  // iterative divider
    case InstrClass::kLoad:
    case InstrClass::kStore:
      return 2;  // LMB BRAM access: 1 wait state
    case InstrClass::kBranch:
      return taken ? 3u : 1u;  // delay slots unused -> taken branches flush
    case InstrClass::kJump:
      return 3;
    case InstrClass::kHalt:
      return 1;
  }
  return 1;
}

}  // namespace warp::isa
