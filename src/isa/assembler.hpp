// Two-pass macro assembler for the MicroBlaze-subset ISA.
//
// This plays the role of mb-gcc in the study: benchmark kernels are written
// once against pseudo-instructions, and the assembler lowers them according
// to the processor configuration (CpuConfig):
//
//   mul_p rd,ra,rb   -> `mul` when the multiplier is present, otherwise a
//                       call to the injected software routine __mulsi3
//                       (shift-and-add loop) — the Section-2 matmul ablation;
//   div_p rd,ra,rb   -> `idiv` or a call to __divsi3;
//   shl_i rd,ra,n    -> `bslli` with a barrel shifter, otherwise n successive
//                       `add rd,rd,rd` (the paper: "an n-bit shift by using n
//                       successive add operations") — the brev ablation;
//   shr_i / sar_i    -> `bsrli`/`bsrai` or n successive `srl`/`sra`;
//   shl_r / shr_r    -> `bsll`/`bsrl` or calls to __lshl/__lshr loops;
//   li/la rd, value  -> `addi` or `imm`+`addi` for 32-bit constants;
//   mv, nop, call, ret, inc, dec — the usual conveniences.
//
// Syntax: one instruction/directive per line; `;` or `#` start comments;
// `label:` defines a code label; directives: `.equ name, value`,
// `.word value`, `.space n_words`. Operands: registers (r0..r31), integer
// literals (decimal or 0x hex), symbols (labels or .equ), or `symbol+offset`.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/error.hpp"
#include "isa/isa.hpp"

namespace warp::isa {

/// An assembled binary image (loaded at instruction address 0).
struct Program {
  std::vector<std::uint32_t> words;
  std::unordered_map<std::string, std::uint32_t> symbols;  // label -> byte addr
  CpuConfig config;  // configuration the binary was compiled for

  std::uint32_t size_bytes() const { return static_cast<std::uint32_t>(words.size() * 4); }
  /// Byte address of a label; throws InternalError if undefined.
  std::uint32_t label(const std::string& name) const;
  /// Disassemble the whole program (for debugging and the decompiler tests).
  std::string disassembly() const;
};

/// Assemble `source` for the given processor configuration.
common::Result<Program> assemble(std::string_view source, const CpuConfig& config);

}  // namespace warp::isa
