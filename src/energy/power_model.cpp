#include "energy/power_model.hpp"

namespace warp::energy {

EnergyBreakdown microblaze_energy(double t_active_s, double t_idle_s, double t_hw_active_s,
                                  unsigned used_luts, bool uses_mac,
                                  const MicroBlazePower& mb, const WclaPower& hw) {
  EnergyBreakdown e;
  e.e_mb_mj = mb.active_mw * t_active_s + mb.idle_mw * t_idle_s;
  const double hw_mw =
      (t_hw_active_s > 0.0)
          ? hw.base_mw + hw.per_lut_mw * static_cast<double>(used_luts) +
                (uses_mac ? hw.mac_mw : 0.0)
          : 0.0;
  e.e_hw_mj = hw_mw * t_hw_active_s;
  e.e_static_mj = mb.static_mw * (t_active_s + t_idle_s);
  return e;
}

// System-level power points calibrated so the relative energies match the
// paper: the MicroBlaze system consumes the most energy (about 1.5x the
// ARM11), the warp processor lands ~26% below the ARM10, and the ARM11 needs
// ~80% more energy than the warp processor.
ArmCorePower arm7_power() { return {"ARM7", 100.0, 110.0}; }
ArmCorePower arm9_power() { return {"ARM9", 250.0, 400.0}; }
ArmCorePower arm10_power() { return {"ARM10", 325.0, 980.0}; }
ArmCorePower arm11_power() { return {"ARM11", 550.0, 2300.0}; }

double arm_energy_mj(const ArmCorePower& core, double t_seconds) {
  return core.system_mw * t_seconds;
}

}  // namespace warp::energy
