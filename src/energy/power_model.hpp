// Power and energy models — paper Figure 5 and Section 4.
//
//   E_total  = E_MB + E_HW + E_static
//   E_MB     = P_idle * t_idle + P_active * t_active
//   E_HW     = P_HW * t_HW_active
//   E_static = P_static * t_total
//
// The paper obtains its power constants from Xilinx XPower (MicroBlaze
// system on a Spartan3) and Synopsys DC on UMC 0.18um (the WCLA); we use
// constant models calibrated to reproduce the paper's *relative* results
// (energy ordering and reduction percentages). All constants live here so
// every experiment shares one calibration.
//
// ARM comparison points (ARM7@100, ARM9@250, ARM10@325, ARM11@550 MHz) are
// modeled as processor-system power (core + caches + memory interface),
// matching the paper's SimpleScalar-based system-level accounting.
#pragma once

#include <string>

namespace warp::energy {

/// MicroBlaze soft core on a Spartan3 (XPower-flavored constants).
struct MicroBlazePower {
  double active_mw = 280.0;  // dynamic, core executing
  double idle_mw = 90.0;     // dynamic, core stalled waiting on the WCLA
  double static_mw = 120.0;  // FPGA quiescent power (charged over total time)
};

/// WCLA dynamic power (UMC 0.18um synthesis estimates): a base cost for the
/// DADG/LCH/registers, plus per-LUT fabric activity and MAC activity.
struct WclaPower {
  double base_mw = 190.0;      // DADG + LCH + registers + BRAM port at 250 MHz
  double per_lut_mw = 0.11;    // fabric activity
  double mac_mw = 60.0;        // hard 32-bit MAC when the kernel uses it
};

struct EnergyBreakdown {
  double e_mb_mj = 0.0;
  double e_hw_mj = 0.0;
  double e_static_mj = 0.0;
  double total_mj() const { return e_mb_mj + e_hw_mj + e_static_mj; }
};

/// Figure 5 evaluation. Times in seconds; power from the structs above.
EnergyBreakdown microblaze_energy(double t_active_s, double t_idle_s, double t_hw_active_s,
                                  unsigned used_luts, bool uses_mac,
                                  const MicroBlazePower& mb = {}, const WclaPower& hw = {});

/// A hard-core ARM comparison point.
struct ArmCorePower {
  std::string name;
  double clock_mhz = 0.0;
  double system_mw = 0.0;  // processor-system power at that clock
};

/// The four comparison cores of Figures 6 and 7.
ArmCorePower arm7_power();
ArmCorePower arm9_power();
ArmCorePower arm10_power();
ArmCorePower arm11_power();

double arm_energy_mj(const ArmCorePower& core, double t_seconds);

}  // namespace warp::energy
