// Placement and routing for the WCLA fabric.
//
// These are the lean on-chip algorithms of the warp-processing tool flow:
//   - placement: greedy constructive seed refined by a short simulated-
//     annealing schedule over half-perimeter wirelength (the "lean placement"
//     of Lysecky & Vahid, DATE'04);
//   - routing: ROCR-style negotiated congestion (Lysecky, Vahid, Tan,
//     DAC'04 "Dynamic FPGA Routing for Just-in-Time FPGA Compilation"):
//     every net is routed by A* over the routing-resource grid; overused
//     cells get present- and history-cost penalties and everything is
//     ripped up and rerouted until the solution is legal;
//   - timing: arrival-time propagation over the placed-and-routed netlist
//     giving the fabric critical path (which derates the WCLA clock).
//
// Both algorithms meter their work (moves, wavefront expansions) so the
// warp runtime can charge realistic DPM execution time for them.
#pragma once

#include <cstdint>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "fabric/wcla.hpp"
#include "techmap/techmap.hpp"

namespace warp::pnr {

struct PlaceOptions {
  std::uint64_t seed = 1;
  unsigned moves_per_lut = 24;     // annealing budget (lean!)
  double initial_temperature = 8.0;
  double cooling = 0.92;
};

struct PlaceResult {
  std::vector<fabric::LutSite> placement;    // per LUT
  std::vector<fabric::LutSite> input_pads;   // per primary input
  std::vector<fabric::LutSite> output_pads;  // per primary output
  double hpwl = 0.0;
  std::uint64_t moves = 0;           // metered work
  std::uint64_t accepted_moves = 0;
};

struct RouteOptions {
  unsigned max_iterations = 16;
  double present_factor = 0.6;   // growth of present-congestion penalty
  double history_factor = 0.25;  // accumulation of history cost
};

struct RouteResult {
  std::vector<fabric::RoutedNet> routes;
  bool success = false;
  unsigned iterations = 0;
  std::uint64_t expansions = 0;  // metered work
  double critical_path_ns = 0.0;
  unsigned max_hops = 0;
};

struct PnrOptions {
  PlaceOptions place;
  RouteOptions route;
};

struct PnrResult {
  fabric::FabricConfig config;
  PlaceResult place;
  RouteResult route;
};

common::Result<PlaceResult> place(const techmap::LutNetlist& netlist,
                                  const fabric::FabricGeometry& geometry,
                                  const PlaceOptions& options = {});

common::Result<RouteResult> route(const techmap::LutNetlist& netlist,
                                  const fabric::FabricGeometry& geometry,
                                  const PlaceResult& placement,
                                  const RouteOptions& options = {});

/// Full flow: place, route, timing; returns a complete FabricConfig.
common::Result<PnrResult> place_and_route(const techmap::LutNetlist& netlist,
                                          const fabric::FabricGeometry& geometry,
                                          const PnrOptions& options = {});

}  // namespace warp::pnr
