// Placement and routing for the WCLA fabric.
//
// These are the lean on-chip algorithms of the warp-processing tool flow:
//   - placement: greedy constructive seed refined by a short simulated-
//     annealing schedule over half-perimeter wirelength (the "lean placement"
//     of Lysecky & Vahid, DATE'04). A move's cost delta is computed from
//     maintained per-net bounding boxes (min/max coordinates plus occupancy
//     counts at each extreme, the classic VPR scheme), so it is O(1) per
//     affected net instead of O(endpoints); an exact-rescan mode is kept
//     both as the pre-incremental baseline and as a per-move drift check;
//   - routing: ROCR-style negotiated congestion (Lysecky, Vahid, Tan,
//     DAC'04 "Dynamic FPGA Routing for Just-in-Time FPGA Compilation"):
//     every net is routed by A* over the routing-resource grid; overused
//     cells get present- and history-cost penalties. Rip-up is selective:
//     routed trees and the history-cost grid persist across iterations, and
//     only sinks whose paths cross an overused cell are ripped up — their
//     re-expansion is seeded from the net's surviving tree. The full
//     rip-up-everything baseline is kept behind an option;
//   - timing: arrival-time propagation over the placed-and-routed netlist
//     giving the fabric critical path (which derates the WCLA clock).
//
// Both algorithms meter their work (moves, wavefront expansions) so the
// warp runtime can charge realistic DPM execution time for them. See
// src/pnr/README.md for the full story.
#pragma once

#include <cstdint>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "fabric/wcla.hpp"
#include "techmap/techmap.hpp"

namespace warp::pnr {

struct PlaceOptions {
  std::uint64_t seed = 1;
  unsigned moves_per_lut = 24;     // annealing budget (lean!)
  double initial_temperature = 8.0;
  double cooling = 0.92;
  // Incremental bounding-box cost updates (default). false selects the
  // exact-rescan baseline that recomputes each affected net's HPWL from its
  // endpoints on every move; both modes produce bit-identical placements for
  // the same seed (deltas are integer-exact).
  bool incremental = true;
  // Debug: in incremental mode, cross-check every move's delta against an
  // exact rescan of the affected nets and fail on any drift.
  bool verify_incremental = false;
};

struct PlaceResult {
  std::vector<fabric::LutSite> placement;    // per LUT
  std::vector<fabric::LutSite> input_pads;   // per primary input
  std::vector<fabric::LutSite> output_pads;  // per primary output
  double hpwl = 0.0;
  std::uint64_t moves = 0;           // metered work
  std::uint64_t accepted_moves = 0;
  // Distinct nets whose delta was evaluated incrementally, summed over all
  // moves (small nets via a two-scan delta, big nets via an O(1) bbox
  // update). bbox_rescans counts the big-net updates that degraded to a
  // full endpoint rescan (shrink off a unique extreme).
  std::uint64_t delta_evaluations = 0;
  std::uint64_t bbox_rescans = 0;
};

struct RouteOptions {
  unsigned max_iterations = 16;
  double present_factor = 0.6;   // growth of present-congestion penalty
  double history_factor = 0.25;  // accumulation of history cost
  // Selective rip-up (default): per-net routed trees persist across
  // congestion iterations and only sinks whose paths cross overused cells
  // are ripped up and rerouted. false selects the baseline that rips up and
  // reroutes every net each iteration.
  bool selective_ripup = true;
};

struct RouteResult {
  std::vector<fabric::RoutedNet> routes;
  bool success = false;
  unsigned iterations = 0;
  std::uint64_t expansions = 0;  // metered work
  double critical_path_ns = 0.0;
  unsigned max_hops = 0;
  std::uint64_t nets_rerouted = 0;  // rip-up victims summed over iterations 2+
  std::vector<unsigned> nets_rerouted_per_iter;  // [i] = nets (re)routed in iteration i+1
};

struct PnrOptions {
  PlaceOptions place;
  RouteOptions route;
};

struct PnrResult {
  fabric::FabricConfig config;
  PlaceResult place;
  RouteResult route;
};

common::Result<PlaceResult> place(const techmap::LutNetlist& netlist,
                                  const fabric::FabricGeometry& geometry,
                                  const PlaceOptions& options = {});

common::Result<RouteResult> route(const techmap::LutNetlist& netlist,
                                  const fabric::FabricGeometry& geometry,
                                  const PlaceResult& placement,
                                  const RouteOptions& options = {});

/// Full flow: place, route, timing; returns a complete FabricConfig.
common::Result<PnrResult> place_and_route(const techmap::LutNetlist& netlist,
                                          const fabric::FabricGeometry& geometry,
                                          const PnrOptions& options = {});

/// Canonical content hash of a complete place-and-route result: the fabric
/// configuration plus the metered flow statistics. Downstream pipeline
/// stages (bitstream generation) chain their cache keys off this.
common::Digest content_hash(const PnrResult& result);

}  // namespace warp::pnr
