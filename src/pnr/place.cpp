#include <algorithm>
#include <cmath>

#include "pnr/pnr.hpp"

#include "common/strings.hpp"

namespace warp::pnr {
namespace {

using fabric::FabricGeometry;
using fabric::LutSite;
using techmap::LutNetlist;
using techmap::NetRef;

// A net endpoint: either a movable LUT or a fixed pad position.
struct Endpoint {
  int lut = -1;  // >= 0: movable
  int fixed_x = 0;
  int fixed_y = 0;
};

struct Net {
  std::vector<Endpoint> endpoints;
};

// Maintained bounding box of one net (the VPR scheme): the four extremes
// plus how many endpoints sit on each extreme. The counts make most moves
// O(1): an endpoint leaving an extreme with count > 1 just decrements, and
// only a shrink off a *unique* extreme forces a full endpoint rescan.
struct NetBox {
  int min_x = 0, max_x = 0, min_y = 0, max_y = 0;
  int cnt_min_x = 0, cnt_max_x = 0, cnt_min_y = 0, cnt_max_y = 0;

  double hpwl() const { return static_cast<double>((max_x - min_x) + (max_y - min_y)); }
};

struct PlacerState {
  const LutNetlist& netlist;
  const FabricGeometry& geometry;
  std::vector<Net> nets;
  std::vector<std::vector<int>> nets_of_lut;  // lut -> net indices (deduped)
  std::vector<std::vector<std::pair<int, int>>> nets_of_lut_mult;  // (net, multiplicity)
  std::vector<int> lut_slot;                  // lut -> slot index
  std::vector<int> slot_lut;                  // slot -> lut (-1 free)
  std::vector<int> lut_x, lut_y;              // cached site coords per lut
  std::vector<NetBox> boxes;
  std::vector<LutSite> input_pads;
  std::vector<LutSite> output_pads;

  explicit PlacerState(const LutNetlist& nl, const FabricGeometry& g)
      : netlist(nl), geometry(g) {}

  unsigned slot_count() const {
    return geometry.width * geometry.height * geometry.luts_per_clb;
  }
  LutSite site_of_slot(int slot) const {
    const unsigned per_col = geometry.height * geometry.luts_per_clb;
    LutSite site;
    site.x = static_cast<int>(static_cast<unsigned>(slot) / per_col);
    const unsigned rem = static_cast<unsigned>(slot) % per_col;
    site.y = static_cast<int>(rem / geometry.luts_per_clb);
    site.slot = rem % geometry.luts_per_clb;
    return site;
  }

  void position_of(const Endpoint& ep, int& x, int& y) const {
    if (ep.lut >= 0) {
      x = lut_x[static_cast<std::size_t>(ep.lut)];
      y = lut_y[static_cast<std::size_t>(ep.lut)];
    } else {
      x = ep.fixed_x;
      y = ep.fixed_y;
    }
  }

  double net_hpwl(const Net& net) const {
    int min_x = 1 << 30, max_x = -(1 << 30), min_y = 1 << 30, max_y = -(1 << 30);
    for (const auto& ep : net.endpoints) {
      int x, y;
      position_of(ep, x, y);
      min_x = std::min(min_x, x);
      max_x = std::max(max_x, x);
      min_y = std::min(min_y, y);
      max_y = std::max(max_y, y);
    }
    return static_cast<double>((max_x - min_x) + (max_y - min_y));
  }

  // Exact bbox + extreme counts from current endpoint positions.
  NetBox scan_box(const Net& net) const {
    NetBox box;
    box.min_x = box.min_y = 1 << 30;
    box.max_x = box.max_y = -(1 << 30);
    for (const auto& ep : net.endpoints) {
      int x, y;
      position_of(ep, x, y);
      if (x < box.min_x) { box.min_x = x; box.cnt_min_x = 1; }
      else if (x == box.min_x) ++box.cnt_min_x;
      if (x > box.max_x) { box.max_x = x; box.cnt_max_x = 1; }
      else if (x == box.max_x) ++box.cnt_max_x;
      if (y < box.min_y) { box.min_y = y; box.cnt_min_y = 1; }
      else if (y == box.min_y) ++box.cnt_min_y;
      if (y > box.max_y) { box.max_y = y; box.cnt_max_y = 1; }
      else if (y == box.max_y) ++box.cnt_max_y;
    }
    return box;
  }

  void set_lut_slot(int lut, int slot) {
    lut_slot[static_cast<std::size_t>(lut)] = slot;
    const LutSite site = site_of_slot(slot);
    lut_x[static_cast<std::size_t>(lut)] = site.x;
    lut_y[static_cast<std::size_t>(lut)] = site.y;
  }
};

// Nets at or below this endpoint count skip the box machinery entirely: a
// direct two-scan delta is as cheap as the O(1) update for a handful of
// endpoints, and it sidesteps the count scheme's degenerate case (every
// endpoint of a 2-pin net is a unique extreme, so almost every move would
// force a rescan anyway).
constexpr std::size_t kSmallNetEndpoints = 8;

// One axis of the incremental update: an endpoint moved from `from` to `to`.
// Returns false when the box must be rescanned (shrink off a unique extreme).
bool move_axis(int from, int to, int& mn, int& mx, int& cnt_mn, int& cnt_mx) {
  if (from == to) return true;
  // Add `to`.
  if (to < mn) { mn = to; cnt_mn = 1; }
  else if (to == mn) ++cnt_mn;
  if (to > mx) { mx = to; cnt_mx = 1; }
  else if (to == mx) ++cnt_mx;
  // Remove `from`.
  if (from == mn) {
    if (cnt_mn == 1) return false;
    --cnt_mn;
  }
  if (from == mx) {
    if (cnt_mx == 1) return false;
    --cnt_mx;
  }
  return true;
}

// Pads distributed along the left (inputs) and right (outputs) IO columns.
LutSite input_pad_site(std::size_t index, std::size_t total, const FabricGeometry& g) {
  LutSite site;
  site.x = -1;
  site.y = static_cast<int>((index * g.height) / std::max<std::size_t>(total, 1));
  site.slot = 0;
  return site;
}

LutSite output_pad_site(std::size_t index, std::size_t total, const FabricGeometry& g) {
  LutSite site;
  site.x = static_cast<int>(g.width);
  site.y = static_cast<int>((index * g.height) / std::max<std::size_t>(total, 1));
  site.slot = 0;
  return site;
}

}  // namespace

common::Result<PlaceResult> place(const LutNetlist& netlist, const FabricGeometry& geometry,
                                  const PlaceOptions& options) {
  if (netlist.luts.size() > geometry.lut_capacity()) {
    return common::Result<PlaceResult>::error(common::format(
        "design needs %zu LUTs, fabric has %u", netlist.luts.size(), geometry.lut_capacity()));
  }

  PlacerState st(netlist, geometry);
  const std::size_t num_luts = netlist.luts.size();

  // Pads.
  for (std::size_t i = 0; i < netlist.primary_inputs.size(); ++i) {
    st.input_pads.push_back(input_pad_site(i, netlist.primary_inputs.size(), geometry));
  }
  for (std::size_t i = 0; i < netlist.outputs.size(); ++i) {
    st.output_pads.push_back(output_pad_site(i, netlist.outputs.size(), geometry));
  }

  // Nets: one per driver (LUT or primary input) with its sinks.
  std::vector<int> net_of_lut_driver(num_luts, -1);
  std::vector<int> net_of_pi_driver(netlist.primary_inputs.size(), -1);
  auto net_for_driver = [&](const NetRef& ref) -> int {
    if (ref.kind == NetRef::Kind::kLut) {
      int& id = net_of_lut_driver[static_cast<std::size_t>(ref.index)];
      if (id < 0) {
        id = static_cast<int>(st.nets.size());
        st.nets.emplace_back();
        st.nets.back().endpoints.push_back({ref.index, 0, 0});
      }
      return id;
    }
    if (ref.kind == NetRef::Kind::kPrimaryInput) {
      int& id = net_of_pi_driver[static_cast<std::size_t>(ref.index)];
      if (id < 0) {
        id = static_cast<int>(st.nets.size());
        st.nets.emplace_back();
        const LutSite pad = st.input_pads[static_cast<std::size_t>(ref.index)];
        st.nets.back().endpoints.push_back({-1, pad.x, pad.y});
      }
      return id;
    }
    return -1;  // constants need no routing
  };

  for (std::size_t i = 0; i < num_luts; ++i) {
    for (unsigned k = 0; k < netlist.luts[i].num_inputs; ++k) {
      const int net = net_for_driver(netlist.luts[i].inputs[k]);
      if (net >= 0) st.nets[static_cast<std::size_t>(net)].endpoints.push_back(
          {static_cast<int>(i), 0, 0});
    }
  }
  for (std::size_t o = 0; o < netlist.outputs.size(); ++o) {
    const int net = net_for_driver(netlist.outputs[o].source);
    if (net >= 0) {
      const LutSite pad = st.output_pads[o];
      st.nets[static_cast<std::size_t>(net)].endpoints.push_back({-1, pad.x, pad.y});
    }
  }

  st.nets_of_lut.assign(num_luts, {});
  for (std::size_t n = 0; n < st.nets.size(); ++n) {
    for (const auto& ep : st.nets[n].endpoints) {
      if (ep.lut >= 0) st.nets_of_lut[static_cast<std::size_t>(ep.lut)].push_back(
          static_cast<int>(n));
    }
  }
  st.nets_of_lut_mult.assign(num_luts, {});
  for (std::size_t i = 0; i < num_luts; ++i) {
    auto& list = st.nets_of_lut[i];
    std::sort(list.begin(), list.end());
    for (int n : list) {
      auto& with_mult = st.nets_of_lut_mult[i];
      if (!with_mult.empty() && with_mult.back().first == n) ++with_mult.back().second;
      else with_mult.emplace_back(n, 1);
    }
    list.erase(std::unique(list.begin(), list.end()), list.end());
  }

  // Constructive seed: LUTs in topological (id) order, column-major sweep
  // from the input edge — drivers end up left of their sinks.
  st.lut_slot.assign(num_luts, -1);
  st.slot_lut.assign(st.slot_count(), -1);
  st.lut_x.assign(num_luts, 0);
  st.lut_y.assign(num_luts, 0);
  for (std::size_t i = 0; i < num_luts; ++i) {
    st.set_lut_slot(static_cast<int>(i), static_cast<int>(i));
    st.slot_lut[i] = static_cast<int>(i);
  }

  double cost = 0.0;
  st.boxes.resize(st.nets.size());
  for (std::size_t n = 0; n < st.nets.size(); ++n) {
    if (st.nets[n].endpoints.size() > kSmallNetEndpoints) {
      st.boxes[n] = st.scan_box(st.nets[n]);
    }
    cost += st.net_hpwl(st.nets[n]);
  }

  // Simulated annealing.
  common::Rng rng(options.seed);
  PlaceResult result;
  const std::uint64_t total_moves =
      static_cast<std::uint64_t>(options.moves_per_lut) * std::max<std::size_t>(num_luts, 1);
  double temperature = options.initial_temperature;
  const std::uint64_t moves_per_stage = std::max<std::uint64_t>(total_moves / 40, 1);

  // Scratch for incremental moves, reused across the annealing loop. The
  // stamp arrays give O(1) "seen this move?" checks without clearing.
  std::vector<std::pair<int, NetBox>> saved_boxes;  // big-net undo log for one move
  std::vector<int> affected_small;                  // small nets touched this move
  std::vector<std::uint64_t> net_saved_stamp(st.nets.size(), 0);
  std::vector<std::uint64_t> net_done_stamp(st.nets.size(), 0);  // rescanned early

  for (std::uint64_t move = 0; move < total_moves && num_luts > 0; ++move) {
    const int lut = static_cast<int>(rng.below(static_cast<std::uint32_t>(num_luts)));
    const int new_slot = static_cast<int>(rng.below(st.slot_count()));
    const int old_slot = st.lut_slot[static_cast<std::size_t>(lut)];
    if (new_slot == old_slot) continue;
    const int other = st.slot_lut[static_cast<std::size_t>(new_slot)];

    double delta = 0.0;
    ++result.moves;

    if (!options.incremental) {
      // Exact-rescan baseline: recompute each affected net's HPWL from its
      // endpoints before and after the move.
      std::vector<int> affected = st.nets_of_lut[static_cast<std::size_t>(lut)];
      if (other >= 0) {
        for (int n : st.nets_of_lut[static_cast<std::size_t>(other)]) affected.push_back(n);
        std::sort(affected.begin(), affected.end());
        affected.erase(std::unique(affected.begin(), affected.end()), affected.end());
      }
      double before = 0.0;
      for (int n : affected) before += st.net_hpwl(st.nets[static_cast<std::size_t>(n)]);

      st.set_lut_slot(lut, new_slot);
      st.slot_lut[static_cast<std::size_t>(new_slot)] = lut;
      st.slot_lut[static_cast<std::size_t>(old_slot)] = other;
      if (other >= 0) st.set_lut_slot(other, old_slot);

      double after = 0.0;
      for (int n : affected) after += st.net_hpwl(st.nets[static_cast<std::size_t>(n)]);
      delta = after - before;

      const bool accept = delta <= 0.0 || rng.chance(std::exp(-delta / temperature));
      if (accept) {
        cost += delta;
        ++result.accepted_moves;
      } else {
        st.set_lut_slot(lut, old_slot);
        st.slot_lut[static_cast<std::size_t>(old_slot)] = lut;
        st.slot_lut[static_cast<std::size_t>(new_slot)] = other;
        if (other >= 0) st.set_lut_slot(other, new_slot);
      }
      if (move % moves_per_stage == moves_per_stage - 1) temperature *= options.cooling;
      continue;
    }

    // Incremental path. Small nets (the overwhelming majority) get a direct
    // two-scan delta — for a handful of endpoints that is as cheap as any
    // bookkeeping — while big nets use the maintained bounding boxes with
    // O(1) updates. The before-sums are gathered first (old positions), then
    // the move is applied, then boxes are updated and the after-sums read.
    const int ax0 = st.lut_x[static_cast<std::size_t>(lut)];
    const int ay0 = st.lut_y[static_cast<std::size_t>(lut)];
    int bx0 = 0, by0 = 0;
    if (other >= 0) {
      bx0 = st.lut_x[static_cast<std::size_t>(other)];
      by0 = st.lut_y[static_cast<std::size_t>(other)];
    }

    const std::uint64_t stamp = result.moves;
    double before = 0.0;
    saved_boxes.clear();
    affected_small.clear();
    auto gather = [&](int n) {
      const std::size_t nn = static_cast<std::size_t>(n);
      if (net_saved_stamp[nn] == stamp) return;
      net_saved_stamp[nn] = stamp;
      ++result.delta_evaluations;
      if (st.nets[nn].endpoints.size() <= kSmallNetEndpoints) {
        affected_small.push_back(n);
        before += st.net_hpwl(st.nets[nn]);
      } else {
        saved_boxes.emplace_back(n, st.boxes[nn]);
        before += st.boxes[nn].hpwl();
      }
    };
    for (const auto& [n, mult] : st.nets_of_lut_mult[static_cast<std::size_t>(lut)]) {
      gather(n);
    }
    if (other >= 0) {
      for (const auto& [n, mult] : st.nets_of_lut_mult[static_cast<std::size_t>(other)]) {
        gather(n);
      }
    }

    st.set_lut_slot(lut, new_slot);
    st.slot_lut[static_cast<std::size_t>(new_slot)] = lut;
    st.slot_lut[static_cast<std::size_t>(old_slot)] = other;
    if (other >= 0) st.set_lut_slot(other, old_slot);
    const int ax1 = st.lut_x[static_cast<std::size_t>(lut)];
    const int ay1 = st.lut_y[static_cast<std::size_t>(lut)];

    // Push the moved endpoints through the big nets' boxes. Positions are
    // already final, so a shrink-forced rescan is exact at any point; a
    // rescanned net is marked done and later endpoint moves (the second LUT
    // of a swap sharing the net) must be skipped.
    auto update_net = [&](int n, int fx, int fy, int tx, int ty, int mult) {
      NetBox& box = st.boxes[static_cast<std::size_t>(n)];
      for (int m = 0; m < mult; ++m) {
        if (!move_axis(fx, tx, box.min_x, box.max_x, box.cnt_min_x, box.cnt_max_x) ||
            !move_axis(fy, ty, box.min_y, box.max_y, box.cnt_min_y, box.cnt_max_y)) {
          box = st.scan_box(st.nets[static_cast<std::size_t>(n)]);
          ++result.bbox_rescans;
          return false;  // net done, skip its remaining endpoint moves
        }
      }
      return true;
    };
    if (!saved_boxes.empty()) {
      for (const auto& [n, mult] : st.nets_of_lut_mult[static_cast<std::size_t>(lut)]) {
        const std::size_t nn = static_cast<std::size_t>(n);
        if (st.nets[nn].endpoints.size() <= kSmallNetEndpoints) continue;
        if (net_done_stamp[nn] != stamp && !update_net(n, ax0, ay0, ax1, ay1, mult)) {
          net_done_stamp[nn] = stamp;
        }
      }
      if (other >= 0) {
        for (const auto& [n, mult] : st.nets_of_lut_mult[static_cast<std::size_t>(other)]) {
          const std::size_t nn = static_cast<std::size_t>(n);
          if (st.nets[nn].endpoints.size() <= kSmallNetEndpoints) continue;
          if (net_done_stamp[nn] != stamp && !update_net(n, bx0, by0, ax0, ay0, mult)) {
            net_done_stamp[nn] = stamp;
          }
        }
      }
    }

    double after = 0.0;
    for (const int n : affected_small) after += st.net_hpwl(st.nets[static_cast<std::size_t>(n)]);
    for (const auto& [n, saved] : saved_boxes) {
      (void)saved;
      after += st.boxes[static_cast<std::size_t>(n)].hpwl();
    }
    delta = after - before;

    if (options.verify_incremental) {
      // Exact cross-check: every big net's maintained box must equal a fresh
      // endpoint scan, and the summed delta must match an exact rescan of
      // all affected nets (all quantities are integer-valued, so equality
      // is exact).
      for (const auto& [n, saved] : saved_boxes) {
        const NetBox fresh = st.scan_box(st.nets[static_cast<std::size_t>(n)]);
        const NetBox& kept = st.boxes[static_cast<std::size_t>(n)];
        if (fresh.min_x != kept.min_x || fresh.max_x != kept.max_x ||
            fresh.min_y != kept.min_y || fresh.max_y != kept.max_y ||
            fresh.cnt_min_x != kept.cnt_min_x || fresh.cnt_max_x != kept.cnt_max_x ||
            fresh.cnt_min_y != kept.cnt_min_y || fresh.cnt_max_y != kept.cnt_max_y) {
          return common::Result<PlaceResult>::error(common::format(
              "incremental bbox drift on net %d at move %llu", n,
              static_cast<unsigned long long>(result.moves)));
        }
      }
      double exact_after = 0.0;
      for (const int n : affected_small) {
        exact_after += st.net_hpwl(st.nets[static_cast<std::size_t>(n)]);
      }
      for (const auto& [n, saved] : saved_boxes) {
        (void)saved;
        exact_after += st.net_hpwl(st.nets[static_cast<std::size_t>(n)]);
      }
      if (exact_after - before != delta) {
        return common::Result<PlaceResult>::error(common::format(
            "incremental delta %f != exact %f at move %llu", delta, exact_after - before,
            static_cast<unsigned long long>(result.moves)));
      }
    }

    const bool accept = delta <= 0.0 || rng.chance(std::exp(-delta / temperature));
    if (accept) {
      cost += delta;
      ++result.accepted_moves;
    } else {
      // Revert positions and restore the saved big-net boxes (small nets
      // carry no maintained state).
      st.set_lut_slot(lut, old_slot);
      st.slot_lut[static_cast<std::size_t>(old_slot)] = lut;
      st.slot_lut[static_cast<std::size_t>(new_slot)] = other;
      if (other >= 0) st.set_lut_slot(other, new_slot);
      for (const auto& [n, saved] : saved_boxes) {
        st.boxes[static_cast<std::size_t>(n)] = saved;
      }
    }
    if (move % moves_per_stage == moves_per_stage - 1) temperature *= options.cooling;
  }

  result.placement.resize(num_luts);
  for (std::size_t i = 0; i < num_luts; ++i) {
    result.placement[i] = st.site_of_slot(st.lut_slot[i]);
  }
  result.input_pads = st.input_pads;
  result.output_pads = st.output_pads;
  result.hpwl = cost;
  return result;
}

}  // namespace warp::pnr
