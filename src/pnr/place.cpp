#include <algorithm>
#include <cmath>

#include "pnr/pnr.hpp"

#include "common/strings.hpp"

namespace warp::pnr {
namespace {

using fabric::FabricGeometry;
using fabric::LutSite;
using techmap::LutNetlist;
using techmap::NetRef;

// A net endpoint: either a movable LUT or a fixed pad position.
struct Endpoint {
  int lut = -1;  // >= 0: movable
  int fixed_x = 0;
  int fixed_y = 0;
};

struct Net {
  std::vector<Endpoint> endpoints;
};

struct PlacerState {
  const LutNetlist& netlist;
  const FabricGeometry& geometry;
  std::vector<Net> nets;
  std::vector<std::vector<int>> nets_of_lut;  // lut -> net indices
  std::vector<int> lut_slot;                  // lut -> slot index
  std::vector<int> slot_lut;                  // slot -> lut (-1 free)
  std::vector<LutSite> input_pads;
  std::vector<LutSite> output_pads;

  explicit PlacerState(const LutNetlist& nl, const FabricGeometry& g)
      : netlist(nl), geometry(g) {}

  unsigned slot_count() const {
    return geometry.width * geometry.height * geometry.luts_per_clb;
  }
  LutSite site_of_slot(int slot) const {
    const unsigned per_col = geometry.height * geometry.luts_per_clb;
    LutSite site;
    site.x = static_cast<int>(static_cast<unsigned>(slot) / per_col);
    const unsigned rem = static_cast<unsigned>(slot) % per_col;
    site.y = static_cast<int>(rem / geometry.luts_per_clb);
    site.slot = rem % geometry.luts_per_clb;
    return site;
  }

  void position_of(const Endpoint& ep, int& x, int& y) const {
    if (ep.lut >= 0) {
      const LutSite site = site_of_slot(lut_slot[static_cast<std::size_t>(ep.lut)]);
      x = site.x;
      y = site.y;
    } else {
      x = ep.fixed_x;
      y = ep.fixed_y;
    }
  }

  double net_hpwl(const Net& net) const {
    int min_x = 1 << 30, max_x = -(1 << 30), min_y = 1 << 30, max_y = -(1 << 30);
    for (const auto& ep : net.endpoints) {
      int x, y;
      position_of(ep, x, y);
      min_x = std::min(min_x, x);
      max_x = std::max(max_x, x);
      min_y = std::min(min_y, y);
      max_y = std::max(max_y, y);
    }
    return static_cast<double>((max_x - min_x) + (max_y - min_y));
  }
};

// Pads distributed along the left (inputs) and right (outputs) IO columns.
LutSite input_pad_site(std::size_t index, std::size_t total, const FabricGeometry& g) {
  LutSite site;
  site.x = -1;
  site.y = static_cast<int>((index * g.height) / std::max<std::size_t>(total, 1));
  site.slot = 0;
  return site;
}

LutSite output_pad_site(std::size_t index, std::size_t total, const FabricGeometry& g) {
  LutSite site;
  site.x = static_cast<int>(g.width);
  site.y = static_cast<int>((index * g.height) / std::max<std::size_t>(total, 1));
  site.slot = 0;
  return site;
}

}  // namespace

common::Result<PlaceResult> place(const LutNetlist& netlist, const FabricGeometry& geometry,
                                  const PlaceOptions& options) {
  if (netlist.luts.size() > geometry.lut_capacity()) {
    return common::Result<PlaceResult>::error(common::format(
        "design needs %zu LUTs, fabric has %u", netlist.luts.size(), geometry.lut_capacity()));
  }

  PlacerState st(netlist, geometry);
  const std::size_t num_luts = netlist.luts.size();

  // Pads.
  for (std::size_t i = 0; i < netlist.primary_inputs.size(); ++i) {
    st.input_pads.push_back(input_pad_site(i, netlist.primary_inputs.size(), geometry));
  }
  for (std::size_t i = 0; i < netlist.outputs.size(); ++i) {
    st.output_pads.push_back(output_pad_site(i, netlist.outputs.size(), geometry));
  }

  // Nets: one per driver (LUT or primary input) with its sinks.
  std::vector<int> net_of_lut_driver(num_luts, -1);
  std::vector<int> net_of_pi_driver(netlist.primary_inputs.size(), -1);
  auto net_for_driver = [&](const NetRef& ref) -> int {
    if (ref.kind == NetRef::Kind::kLut) {
      int& id = net_of_lut_driver[static_cast<std::size_t>(ref.index)];
      if (id < 0) {
        id = static_cast<int>(st.nets.size());
        st.nets.emplace_back();
        st.nets.back().endpoints.push_back({ref.index, 0, 0});
      }
      return id;
    }
    if (ref.kind == NetRef::Kind::kPrimaryInput) {
      int& id = net_of_pi_driver[static_cast<std::size_t>(ref.index)];
      if (id < 0) {
        id = static_cast<int>(st.nets.size());
        st.nets.emplace_back();
        const LutSite pad = st.input_pads[static_cast<std::size_t>(ref.index)];
        st.nets.back().endpoints.push_back({-1, pad.x, pad.y});
      }
      return id;
    }
    return -1;  // constants need no routing
  };

  for (std::size_t i = 0; i < num_luts; ++i) {
    for (unsigned k = 0; k < netlist.luts[i].num_inputs; ++k) {
      const int net = net_for_driver(netlist.luts[i].inputs[k]);
      if (net >= 0) st.nets[static_cast<std::size_t>(net)].endpoints.push_back(
          {static_cast<int>(i), 0, 0});
    }
  }
  for (std::size_t o = 0; o < netlist.outputs.size(); ++o) {
    const int net = net_for_driver(netlist.outputs[o].source);
    if (net >= 0) {
      const LutSite pad = st.output_pads[o];
      st.nets[static_cast<std::size_t>(net)].endpoints.push_back({-1, pad.x, pad.y});
    }
  }

  st.nets_of_lut.assign(num_luts, {});
  for (std::size_t n = 0; n < st.nets.size(); ++n) {
    for (const auto& ep : st.nets[n].endpoints) {
      if (ep.lut >= 0) st.nets_of_lut[static_cast<std::size_t>(ep.lut)].push_back(
          static_cast<int>(n));
    }
  }
  for (auto& list : st.nets_of_lut) {
    std::sort(list.begin(), list.end());
    list.erase(std::unique(list.begin(), list.end()), list.end());
  }

  // Constructive seed: LUTs in topological (id) order, column-major sweep
  // from the input edge — drivers end up left of their sinks.
  st.lut_slot.assign(num_luts, -1);
  st.slot_lut.assign(st.slot_count(), -1);
  for (std::size_t i = 0; i < num_luts; ++i) {
    st.lut_slot[i] = static_cast<int>(i);
    st.slot_lut[i] = static_cast<int>(i);
  }

  double cost = 0.0;
  for (const auto& net : st.nets) cost += st.net_hpwl(net);

  // Simulated annealing.
  common::Rng rng(options.seed);
  PlaceResult result;
  const std::uint64_t total_moves =
      static_cast<std::uint64_t>(options.moves_per_lut) * std::max<std::size_t>(num_luts, 1);
  double temperature = options.initial_temperature;
  const std::uint64_t moves_per_stage = std::max<std::uint64_t>(total_moves / 40, 1);

  for (std::uint64_t move = 0; move < total_moves && num_luts > 0; ++move) {
    const int lut = static_cast<int>(rng.below(static_cast<std::uint32_t>(num_luts)));
    const int new_slot = static_cast<int>(rng.below(st.slot_count()));
    const int old_slot = st.lut_slot[static_cast<std::size_t>(lut)];
    if (new_slot == old_slot) continue;
    const int other = st.slot_lut[static_cast<std::size_t>(new_slot)];

    // Affected nets: those touching `lut` (and `other` if swapping).
    std::vector<int> affected = st.nets_of_lut[static_cast<std::size_t>(lut)];
    if (other >= 0) {
      for (int n : st.nets_of_lut[static_cast<std::size_t>(other)]) affected.push_back(n);
      std::sort(affected.begin(), affected.end());
      affected.erase(std::unique(affected.begin(), affected.end()), affected.end());
    }
    double before = 0.0;
    for (int n : affected) before += st.net_hpwl(st.nets[static_cast<std::size_t>(n)]);

    // Apply.
    st.lut_slot[static_cast<std::size_t>(lut)] = new_slot;
    st.slot_lut[static_cast<std::size_t>(new_slot)] = lut;
    st.slot_lut[static_cast<std::size_t>(old_slot)] = other;
    if (other >= 0) st.lut_slot[static_cast<std::size_t>(other)] = old_slot;

    double after = 0.0;
    for (int n : affected) after += st.net_hpwl(st.nets[static_cast<std::size_t>(n)]);
    const double delta = after - before;
    ++result.moves;

    const bool accept = delta <= 0.0 || rng.chance(std::exp(-delta / temperature));
    if (accept) {
      cost += delta;
      ++result.accepted_moves;
    } else {
      // Revert.
      st.lut_slot[static_cast<std::size_t>(lut)] = old_slot;
      st.slot_lut[static_cast<std::size_t>(old_slot)] = lut;
      st.slot_lut[static_cast<std::size_t>(new_slot)] = other;
      if (other >= 0) st.lut_slot[static_cast<std::size_t>(other)] = new_slot;
    }
    if (move % moves_per_stage == moves_per_stage - 1) temperature *= options.cooling;
  }

  result.placement.resize(num_luts);
  for (std::size_t i = 0; i < num_luts; ++i) {
    result.placement[i] = st.site_of_slot(st.lut_slot[i]);
  }
  result.input_pads = st.input_pads;
  result.output_pads = st.output_pads;
  result.hpwl = cost;
  return result;
}

}  // namespace warp::pnr
