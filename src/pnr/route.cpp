#include <algorithm>
#include <cmath>
#include <map>
#include <queue>

#include "pnr/pnr.hpp"

#include "common/strings.hpp"

namespace warp::pnr {
namespace {

using fabric::FabricGeometry;
using fabric::LutSite;
using fabric::RoutedNet;
using techmap::LutNetlist;
using techmap::NetRef;

// Routing-resource grid: cells (x, y) with x in [-1, width] (the two IO
// columns) and y in [0, height). Congestion is tracked per cell: each cell's
// switch matrix passes at most `capacity` nets.
struct Grid {
  const FabricGeometry& g;
  explicit Grid(const FabricGeometry& geometry) : g(geometry) {}

  int cols() const { return static_cast<int>(g.width) + 2; }
  int rows() const { return static_cast<int>(g.height); }
  int id(int x, int y) const { return (x + 1) * rows() + y; }
  int size() const { return cols() * rows(); }
  bool valid(int x, int y) const {
    return x >= -1 && x <= static_cast<int>(g.width) && y >= 0 && y < rows();
  }
};

struct NetToRoute {
  int driver_lut = -1;
  int driver_input = -1;
  std::pair<int, int> source;
  struct SinkSpec {
    int lut = -1;
    int output_index = -1;
    unsigned input_pin = 0;
    std::pair<int, int> cell;
  };
  std::vector<SinkSpec> sinks;
};

// Nets with physical positions, sinks sorted near-to-far from the driver
// (better Steiner-ish trees, and a deterministic routing order).
std::vector<NetToRoute> build_nets(const LutNetlist& netlist, const PlaceResult& placement) {
  std::vector<NetToRoute> nets;
  std::map<std::pair<int, int>, int> net_of_driver;  // (kind, index) -> net
  auto net_for = [&](const NetRef& ref) -> int {
    if (ref.kind == NetRef::Kind::kConst0 || ref.kind == NetRef::Kind::kConst1) return -1;
    const int kind = (ref.kind == NetRef::Kind::kLut) ? 0 : 1;
    const auto key = std::make_pair(kind, ref.index);
    const auto it = net_of_driver.find(key);
    if (it != net_of_driver.end()) return it->second;
    NetToRoute net;
    if (kind == 0) {
      net.driver_lut = ref.index;
      const LutSite site = placement.placement[static_cast<std::size_t>(ref.index)];
      net.source = {site.x, site.y};
    } else {
      net.driver_input = ref.index;
      const LutSite site = placement.input_pads[static_cast<std::size_t>(ref.index)];
      net.source = {site.x, site.y};
    }
    const int id = static_cast<int>(nets.size());
    nets.push_back(std::move(net));
    net_of_driver.emplace(key, id);
    return id;
  };

  for (std::size_t i = 0; i < netlist.luts.size(); ++i) {
    const LutSite site = placement.placement[i];
    for (unsigned k = 0; k < netlist.luts[i].num_inputs; ++k) {
      const int n = net_for(netlist.luts[i].inputs[k]);
      if (n < 0) continue;
      NetToRoute::SinkSpec sink;
      sink.lut = static_cast<int>(i);
      sink.input_pin = k;
      sink.cell = {site.x, site.y};
      nets[static_cast<std::size_t>(n)].sinks.push_back(sink);
    }
  }
  for (std::size_t o = 0; o < netlist.outputs.size(); ++o) {
    const int n = net_for(netlist.outputs[o].source);
    if (n < 0) continue;
    NetToRoute::SinkSpec sink;
    sink.output_index = static_cast<int>(o);
    const LutSite pad = placement.output_pads[o];
    sink.cell = {pad.x, pad.y};
    nets[static_cast<std::size_t>(n)].sinks.push_back(sink);
  }

  for (auto& net : nets) {
    std::sort(net.sinks.begin(), net.sinks.end(),
              [&](const NetToRoute::SinkSpec& a, const NetToRoute::SinkSpec& b) {
                const int da = std::abs(a.cell.first - net.source.first) +
                               std::abs(a.cell.second - net.source.second);
                const int db = std::abs(b.cell.first - net.source.first) +
                               std::abs(b.cell.second - net.source.second);
                return da < db;
              });
  }
  return nets;
}

// Arrival-time propagation over the routed netlist. Net delay to a sink =
// io + hops*wire; LUT ids are in topological order (techmap covers leaves
// first).
double compute_timing(const LutNetlist& netlist, const FabricGeometry& geometry,
                      const std::vector<RoutedNet>& routes) {
  std::vector<double> arrival(netlist.luts.size(), 0.0);
  std::vector<double> net_delay_to_lut_pin(netlist.luts.size() * techmap::kLutInputs, 0.0);
  std::vector<double> output_arrival(netlist.outputs.size(), 0.0);
  for (const auto& routed : routes) {
    for (const auto& sink : routed.sinks) {
      const double hops = sink.path.empty() ? 0.0 : static_cast<double>(sink.path.size() - 1);
      const double delay = geometry.io_delay_ns * (routed.driver_input >= 0 ? 1.0 : 0.0) +
                           hops * geometry.wire_hop_delay_ns;
      if (sink.lut >= 0) {
        net_delay_to_lut_pin[static_cast<std::size_t>(sink.lut) * techmap::kLutInputs +
                             sink.input_pin] = delay;
      } else if (sink.output_index >= 0) {
        output_arrival[static_cast<std::size_t>(sink.output_index)] = delay;
      }
    }
  }
  double critical = 0.0;
  for (std::size_t i = 0; i < netlist.luts.size(); ++i) {
    double in_arrival = 0.0;
    for (unsigned k = 0; k < netlist.luts[i].num_inputs; ++k) {
      const NetRef& ref = netlist.luts[i].inputs[k];
      double src = 0.0;
      if (ref.kind == NetRef::Kind::kLut) src = arrival[static_cast<std::size_t>(ref.index)];
      in_arrival = std::max(in_arrival,
                            src + net_delay_to_lut_pin[i * techmap::kLutInputs + k]);
    }
    arrival[i] = in_arrival + geometry.lut_delay_ns;
    critical = std::max(critical, arrival[i]);
  }
  for (std::size_t o = 0; o < netlist.outputs.size(); ++o) {
    const NetRef& ref = netlist.outputs[o].source;
    double src = 0.0;
    if (ref.kind == NetRef::Kind::kLut) src = arrival[static_cast<std::size_t>(ref.index)];
    critical = std::max(critical, src + output_arrival[o] + geometry.io_delay_ns);
  }
  return critical;
}

// ---------------------------------------------------------------------------
// Baseline router: rip up and reroute *every* net each congestion iteration
// (the pre-incremental algorithm, kept as the bench/regression reference).
// ---------------------------------------------------------------------------
void route_full_ripup(const Grid& grid, const FabricGeometry& geometry,
                      const RouteOptions& options, std::vector<NetToRoute>& nets,
                      std::vector<std::vector<std::vector<std::pair<int, int>>>>& paths,
                      RouteResult& result) {
  std::vector<double> history(static_cast<std::size_t>(grid.size()), 0.0);
  std::vector<int> usage(static_cast<std::size_t>(grid.size()), 0);

  const int dx[4] = {1, -1, 0, 0};
  const int dy[4] = {0, 0, 1, -1};

  for (unsigned iter = 1; iter <= options.max_iterations; ++iter) {
    result.iterations = iter;
    std::fill(usage.begin(), usage.end(), 0);
    const double present_weight = options.present_factor * static_cast<double>(iter);
    result.nets_rerouted_per_iter.push_back(static_cast<unsigned>(nets.size()));
    if (iter > 1) result.nets_rerouted += nets.size();

    for (std::size_t ni_net = 0; ni_net < nets.size(); ++ni_net) {
      auto& net = nets[ni_net];
      auto& net_paths = paths[ni_net];
      net_paths.assign(net.sinks.size(), {});
      // Route to each sink with A*, reusing the growing tree (cells of the
      // net cost nothing to re-enter).
      std::map<int, unsigned> tree_hops;  // cell id -> hops from driver
      tree_hops[grid.id(net.source.first, net.source.second)] = 0;

      for (std::size_t si = 0; si < net.sinks.size(); ++si) {
        auto& sink = net.sinks[si];
        const int goal = grid.id(sink.cell.first, sink.cell.second);
        // A* from the whole tree.
        std::vector<double> best_cost(static_cast<std::size_t>(grid.size()), 1e30);
        std::vector<int> parent(static_cast<std::size_t>(grid.size()), -2);
        using QE = std::pair<double, int>;  // (cost + heuristic, cell)
        std::priority_queue<QE, std::vector<QE>, std::greater<>> queue;
        auto heuristic = [&](int cell) {
          const int x = cell / grid.rows() - 1;
          const int y = cell % grid.rows();
          return static_cast<double>(std::abs(x - sink.cell.first) +
                                     std::abs(y - sink.cell.second));
        };
        for (const auto& [cell, hops] : tree_hops) {
          best_cost[static_cast<std::size_t>(cell)] = 0.0;
          parent[static_cast<std::size_t>(cell)] = -1;
          queue.emplace(heuristic(cell), cell);
        }
        int found = -1;
        while (!queue.empty()) {
          const auto [prio, cell] = queue.top();
          queue.pop();
          const double cost = prio - heuristic(cell);
          if (cost > best_cost[static_cast<std::size_t>(cell)] + 1e-9) continue;
          ++result.expansions;
          if (cell == goal) {
            found = cell;
            break;
          }
          const int x = cell / grid.rows() - 1;
          const int y = cell % grid.rows();
          for (int d = 0; d < 4; ++d) {
            const int nx = x + dx[d];
            const int ny = y + dy[d];
            if (!grid.valid(nx, ny)) continue;
            const int next = grid.id(nx, ny);
            const std::size_t ni = static_cast<std::size_t>(next);
            // IO register-bank columns are dedicated buses: no congestion.
            const bool io_column = (nx < 0 || nx >= static_cast<int>(geometry.width));
            const double over =
                io_column ? 0.0
                          : std::max(0, usage[ni] + 1 -
                                            static_cast<int>(geometry.channel_capacity));
            const double step = 1.0 + present_weight * over + history[ni];
            const double ncost = cost + step;
            if (ncost + 1e-9 < best_cost[ni]) {
              best_cost[ni] = ncost;
              parent[ni] = cell;
              queue.emplace(ncost + heuristic(next), next);
            }
          }
        }
        if (found < 0) continue;  // unreachable; path stays empty
        // Trace back to the tree.
        std::vector<int> cells;
        int cur = found;
        while (parent[static_cast<std::size_t>(cur)] != -1) {
          cells.push_back(cur);
          cur = parent[static_cast<std::size_t>(cur)];
        }
        cells.push_back(cur);  // tree entry
        std::reverse(cells.begin(), cells.end());
        const unsigned entry_hops = tree_hops[cells.front()];
        auto& path = net_paths[si];
        for (std::size_t i = 0; i < cells.size(); ++i) {
          const int cell = cells[i];
          if (!tree_hops.count(cell)) {
            tree_hops[cell] = entry_hops + static_cast<unsigned>(i);
            ++usage[static_cast<std::size_t>(cell)];
          }
          path.emplace_back(cell / grid.rows() - 1, cell % grid.rows());
        }
      }
    }

    // Legality check (IO register-bank columns are uncapacitated).
    bool overused = false;
    for (std::size_t i = 0; i < usage.size(); ++i) {
      const int x = static_cast<int>(i) / grid.rows() - 1;
      if (x < 0 || x >= static_cast<int>(geometry.width)) continue;
      const int over = usage[i] - static_cast<int>(geometry.channel_capacity);
      if (over > 0) {
        overused = true;
        history[i] += options.history_factor * over;
      }
    }
    if (!overused) {
      result.success = true;
      break;
    }
  }
}

// ---------------------------------------------------------------------------
// Selective rip-up router. Routed trees, cell usage and the history-cost
// grid persist across congestion iterations; only sinks whose paths cross an
// overused cell (or whose tree entry was ripped out from under them) are
// rerouted, with A* seeded from the net's surviving tree.
// ---------------------------------------------------------------------------
class SelectiveRouter {
 public:
  SelectiveRouter(const Grid& grid, const FabricGeometry& geometry,
                  const RouteOptions& options, std::vector<NetToRoute>& nets,
                  std::vector<std::vector<std::vector<std::pair<int, int>>>>& paths,
                  RouteResult& result)
      : grid_(grid), geometry_(geometry), options_(options), nets_(nets), paths_(paths),
        result_(result) {
    const std::size_t cells = static_cast<std::size_t>(grid.size());
    usage_.assign(cells, 0);
    history_.assign(cells, 0.0);
    overused_cell_.assign(cells, 0);
    best_cost_.assign(cells, 0.0);
    parent_.assign(cells, -2);
    visit_epoch_.assign(cells, 0);
    tree_mark_.assign(cells, 0);
    tree_hop_at_.assign(cells, 0);
    tree_cells_.resize(nets.size());
    tree_hops_.resize(nets.size());
    for (std::size_t n = 0; n < nets.size(); ++n) {
      paths_[n].assign(nets[n].sinks.size(), {});
    }
  }

  void run() {
    std::vector<std::size_t> ripped_sinks;
    for (unsigned iter = 1; iter <= options_.max_iterations; ++iter) {
      result_.iterations = iter;
      const double present_weight = options_.present_factor * static_cast<double>(iter);
      unsigned nets_routed = 0;

      for (std::size_t n = 0; n < nets_.size(); ++n) {
        ripped_sinks.clear();
        if (iter == 1) {
          // Fresh tree: just the driver cell (sources carry no switch usage).
          tree_cells_[n] = {grid_.id(nets_[n].source.first, nets_[n].source.second)};
          tree_hops_[n] = {0};
          for (std::size_t s = 0; s < nets_[n].sinks.size(); ++s) ripped_sinks.push_back(s);
        } else {
          rip_up(n, ripped_sinks);
        }
        if (ripped_sinks.empty()) continue;
        ++nets_routed;
        if (iter > 1) ++result_.nets_rerouted;
        route_sinks(n, ripped_sinks, present_weight);
      }
      result_.nets_rerouted_per_iter.push_back(nets_routed);

      // Legality check (IO register-bank columns are uncapacitated); flag
      // the overused cells for the next iteration's rip-up and accumulate
      // their history cost.
      bool overused = false;
      for (std::size_t i = 0; i < usage_.size(); ++i) {
        const int x = static_cast<int>(i) / grid_.rows() - 1;
        overused_cell_[i] = 0;
        if (x < 0 || x >= static_cast<int>(geometry_.width)) continue;
        const int over = usage_[i] - static_cast<int>(geometry_.channel_capacity);
        if (over > 0) {
          overused = true;
          overused_cell_[i] = 1;
          history_[i] += options_.history_factor * over;
        }
      }
      if (!overused) {
        result_.success = true;
        return;
      }
    }
  }

 private:
  // Rebuild net n's tree from the sinks whose paths avoid every overused
  // cell (cascading: a surviving path whose entry cell was ripped is ripped
  // too), release usage for the removed cells, and report the sinks that
  // must be rerouted.
  void rip_up(std::size_t n, std::vector<std::size_t>& ripped_sinks) {
    const auto& old_cells = tree_cells_[n];
    const int source = old_cells.empty()
                           ? grid_.id(nets_[n].source.first, nets_[n].source.second)
                           : old_cells.front();

    bool any_bad = false;
    for (std::size_t s = 0; s < paths_[n].size() && !any_bad; ++s) {
      if (paths_[n][s].empty()) any_bad = true;
      for (const auto& [x, y] : paths_[n][s]) {
        if (overused_cell_[static_cast<std::size_t>(grid_.id(x, y))]) {
          any_bad = true;
          break;
        }
      }
    }
    if (!any_bad) return;  // whole tree survives

    ++tree_epoch_;
    new_cells_.clear();
    new_hops_.clear();
    auto mark = [&](int cell, unsigned hops) {
      tree_mark_[static_cast<std::size_t>(cell)] = tree_epoch_;
      tree_hop_at_[static_cast<std::size_t>(cell)] = hops;
      new_cells_.push_back(cell);
      new_hops_.push_back(hops);
    };
    mark(source, 0);

    for (std::size_t s = 0; s < paths_[n].size(); ++s) {
      auto& path = paths_[n][s];
      bool bad = path.empty();
      for (const auto& [x, y] : path) {
        if (bad) break;
        if (overused_cell_[static_cast<std::size_t>(grid_.id(x, y))]) bad = true;
      }
      if (!bad) {
        const int entry = grid_.id(path.front().first, path.front().second);
        if (tree_mark_[static_cast<std::size_t>(entry)] != tree_epoch_) {
          bad = true;  // entry was on a ripped branch
        } else {
          const unsigned entry_hops = tree_hop_at_[static_cast<std::size_t>(entry)];
          for (std::size_t i = 0; i < path.size(); ++i) {
            const int cell = grid_.id(path[i].first, path[i].second);
            if (tree_mark_[static_cast<std::size_t>(cell)] != tree_epoch_) {
              mark(cell, entry_hops + static_cast<unsigned>(i));
            }
          }
        }
      }
      if (bad) {
        path.clear();
        ripped_sinks.push_back(s);
      }
    }

    // Release usage for cells that fell out of the tree (the source is in
    // both trees and never carried usage).
    for (const int cell : old_cells) {
      if (tree_mark_[static_cast<std::size_t>(cell)] != tree_epoch_) {
        --usage_[static_cast<std::size_t>(cell)];
      }
    }
    tree_cells_[n] = new_cells_;
    tree_hops_[n] = new_hops_;
  }

  // A*-route the given sinks of net n from its current tree, growing the
  // tree (and cell usage) with each new path.
  void route_sinks(std::size_t n, const std::vector<std::size_t>& sink_indices,
                   double present_weight) {
    auto& net = nets_[n];
    // Load the tree into the stamped scratch map.
    ++tree_epoch_;
    for (std::size_t i = 0; i < tree_cells_[n].size(); ++i) {
      tree_mark_[static_cast<std::size_t>(tree_cells_[n][i])] = tree_epoch_;
      tree_hop_at_[static_cast<std::size_t>(tree_cells_[n][i])] = tree_hops_[n][i];
    }

    const int dx[4] = {1, -1, 0, 0};
    const int dy[4] = {0, 0, 1, -1};

    for (const std::size_t si : sink_indices) {
      const auto& sink = net.sinks[si];
      const int goal = grid_.id(sink.cell.first, sink.cell.second);
      auto heuristic = [&](int cell) {
        const int x = cell / grid_.rows() - 1;
        const int y = cell % grid_.rows();
        return static_cast<double>(std::abs(x - sink.cell.first) +
                                   std::abs(y - sink.cell.second));
      };
      ++astar_epoch_;
      using QE = std::pair<double, int>;  // (cost + heuristic, cell)
      std::priority_queue<QE, std::vector<QE>, std::greater<>> queue;
      auto relax = [&](int cell, double cost, int par) {
        const std::size_t ci = static_cast<std::size_t>(cell);
        if (visit_epoch_[ci] == astar_epoch_ && cost + 1e-9 >= best_cost_[ci]) return false;
        visit_epoch_[ci] = astar_epoch_;
        best_cost_[ci] = cost;
        parent_[ci] = par;
        return true;
      };
      for (const int cell : tree_cells_[n]) {
        relax(cell, 0.0, -1);
        queue.emplace(heuristic(cell), cell);
      }
      int found = -1;
      while (!queue.empty()) {
        const auto [prio, cell] = queue.top();
        queue.pop();
        const double cost = prio - heuristic(cell);
        if (cost > best_cost_[static_cast<std::size_t>(cell)] + 1e-9) continue;
        ++result_.expansions;
        if (cell == goal) {
          found = cell;
          break;
        }
        const int x = cell / grid_.rows() - 1;
        const int y = cell % grid_.rows();
        for (int d = 0; d < 4; ++d) {
          const int nx = x + dx[d];
          const int ny = y + dy[d];
          if (!grid_.valid(nx, ny)) continue;
          const int next = grid_.id(nx, ny);
          const std::size_t ni = static_cast<std::size_t>(next);
          // IO register-bank columns are dedicated buses: no congestion.
          const bool io_column = (nx < 0 || nx >= static_cast<int>(geometry_.width));
          const double over =
              io_column ? 0.0
                        : std::max(0, usage_[ni] + 1 -
                                          static_cast<int>(geometry_.channel_capacity));
          const double step = 1.0 + present_weight * over + history_[ni];
          if (relax(next, cost + step, cell)) {
            queue.emplace(cost + step + heuristic(next), next);
          }
        }
      }
      auto& path = paths_[n][si];
      path.clear();
      if (found < 0) continue;  // unreachable; path stays empty
      std::vector<int> cells;
      int cur = found;
      while (parent_[static_cast<std::size_t>(cur)] != -1) {
        cells.push_back(cur);
        cur = parent_[static_cast<std::size_t>(cur)];
      }
      cells.push_back(cur);  // tree entry
      std::reverse(cells.begin(), cells.end());
      const unsigned entry_hops = tree_hop_at_[static_cast<std::size_t>(cells.front())];
      for (std::size_t i = 0; i < cells.size(); ++i) {
        const int cell = cells[i];
        if (tree_mark_[static_cast<std::size_t>(cell)] != tree_epoch_) {
          tree_mark_[static_cast<std::size_t>(cell)] = tree_epoch_;
          tree_hop_at_[static_cast<std::size_t>(cell)] =
              entry_hops + static_cast<unsigned>(i);
          tree_cells_[n].push_back(cell);
          tree_hops_[n].push_back(entry_hops + static_cast<unsigned>(i));
          ++usage_[static_cast<std::size_t>(cell)];
        }
        path.emplace_back(cell / grid_.rows() - 1, cell % grid_.rows());
      }
    }
  }

  const Grid& grid_;
  const FabricGeometry& geometry_;
  const RouteOptions& options_;
  std::vector<NetToRoute>& nets_;
  std::vector<std::vector<std::vector<std::pair<int, int>>>>& paths_;
  RouteResult& result_;

  // Persistent congestion state.
  std::vector<int> usage_;
  std::vector<double> history_;
  std::vector<char> overused_cell_;
  // Persistent per-net routed trees (parallel cell/hop arrays).
  std::vector<std::vector<int>> tree_cells_;
  std::vector<std::vector<unsigned>> tree_hops_;
  // Epoch-stamped scratch (no per-sink reallocation/refill).
  std::vector<double> best_cost_;
  std::vector<int> parent_;
  std::vector<int> visit_epoch_;
  int astar_epoch_ = 0;
  std::vector<int> tree_mark_;
  std::vector<unsigned> tree_hop_at_;
  int tree_epoch_ = 0;
  std::vector<int> new_cells_;
  std::vector<unsigned> new_hops_;
};

}  // namespace

common::Result<RouteResult> route(const LutNetlist& netlist, const FabricGeometry& geometry,
                                  const PlaceResult& placement, const RouteOptions& options) {
  Grid grid(geometry);
  std::vector<NetToRoute> nets = build_nets(netlist, placement);

  RouteResult result;
  // paths[net][sink] = routed cells from tree entry to sink, inclusive.
  std::vector<std::vector<std::vector<std::pair<int, int>>>> paths(nets.size());
  for (std::size_t n = 0; n < nets.size(); ++n) paths[n].resize(nets[n].sinks.size());

  if (options.selective_ripup) {
    SelectiveRouter router(grid, geometry, options, nets, paths, result);
    router.run();
  } else {
    route_full_ripup(grid, geometry, options, nets, paths, result);
  }

  // Convert to RoutedNet records (even on failure, for diagnostics).
  for (std::size_t n = 0; n < nets.size(); ++n) {
    const auto& net = nets[n];
    RoutedNet routed;
    routed.driver_lut = net.driver_lut;
    routed.driver_input = net.driver_input;
    for (std::size_t si = 0; si < net.sinks.size(); ++si) {
      const auto& sink = net.sinks[si];
      RoutedNet::Sink s;
      s.lut = sink.lut;
      s.output_index = sink.output_index;
      s.input_pin = sink.input_pin;
      s.path = paths[n][si];
      result.max_hops = std::max(result.max_hops,
                                 static_cast<unsigned>(s.path.empty() ? 0 : s.path.size() - 1));
      routed.sinks.push_back(std::move(s));
    }
    result.routes.push_back(std::move(routed));
  }

  if (!result.success) {
    return common::Result<RouteResult>::error(common::format(
        "routing did not converge after %u iterations", result.iterations));
  }

  result.critical_path_ns = compute_timing(netlist, geometry, result.routes);
  return result;
}

common::Result<PnrResult> place_and_route(const LutNetlist& netlist,
                                          const fabric::FabricGeometry& geometry,
                                          const PnrOptions& options) {
  auto placed = place(netlist, geometry, options.place);
  if (!placed) return common::Result<PnrResult>::error(placed.message());
  auto routed = route(netlist, geometry, placed.value(), options.route);
  if (!routed) return common::Result<PnrResult>::error(routed.message());

  PnrResult result;
  result.place = std::move(placed).value();
  result.route = std::move(routed).value();

  result.config.geometry = geometry;
  result.config.netlist = netlist;
  result.config.placement = result.place.placement;
  result.config.input_pads = result.place.input_pads;
  result.config.output_pads = result.place.output_pads;
  result.config.routes = result.route.routes;
  result.config.critical_path_ns = result.route.critical_path_ns;
  return result;
}

common::Digest content_hash(const PnrResult& result) {
  common::Hasher h;
  h.digest(fabric::content_hash(result.config));
  h.f64(result.place.hpwl).u64(result.place.moves).u64(result.place.accepted_moves);
  h.u64(result.place.delta_evaluations).u64(result.place.bbox_rescans);
  h.boolean(result.route.success).u32(result.route.iterations).u64(result.route.expansions);
  h.f64(result.route.critical_path_ns).u32(result.route.max_hops);
  h.u64(result.route.nets_rerouted);
  return h.finish();
}

}  // namespace warp::pnr
