#include <algorithm>
#include <cmath>
#include <map>
#include <queue>

#include "pnr/pnr.hpp"

#include "common/strings.hpp"

namespace warp::pnr {
namespace {

using fabric::FabricGeometry;
using fabric::LutSite;
using fabric::RoutedNet;
using techmap::LutNetlist;
using techmap::NetRef;

// Routing-resource grid: cells (x, y) with x in [-1, width] (the two IO
// columns) and y in [0, height). Congestion is tracked per cell: each cell's
// switch matrix passes at most `capacity` nets.
struct Grid {
  const FabricGeometry& g;
  explicit Grid(const FabricGeometry& geometry) : g(geometry) {}

  int cols() const { return static_cast<int>(g.width) + 2; }
  int rows() const { return static_cast<int>(g.height); }
  int id(int x, int y) const { return (x + 1) * rows() + y; }
  int size() const { return cols() * rows(); }
  bool valid(int x, int y) const {
    return x >= -1 && x <= static_cast<int>(g.width) && y >= 0 && y < rows();
  }
};

struct NetToRoute {
  int driver_lut = -1;
  int driver_input = -1;
  std::pair<int, int> source;
  struct SinkSpec {
    int lut = -1;
    int output_index = -1;
    unsigned input_pin = 0;
    std::pair<int, int> cell;
  };
  std::vector<SinkSpec> sinks;
};

}  // namespace

common::Result<RouteResult> route(const LutNetlist& netlist, const FabricGeometry& geometry,
                                  const PlaceResult& placement, const RouteOptions& options) {
  Grid grid(geometry);

  // Build the net list with physical positions.
  std::vector<NetToRoute> nets;
  std::map<std::pair<int, int>, int> net_of_driver;  // (kind, index) -> net
  auto net_for = [&](const NetRef& ref) -> int {
    if (ref.kind == NetRef::Kind::kConst0 || ref.kind == NetRef::Kind::kConst1) return -1;
    const int kind = (ref.kind == NetRef::Kind::kLut) ? 0 : 1;
    const auto key = std::make_pair(kind, ref.index);
    const auto it = net_of_driver.find(key);
    if (it != net_of_driver.end()) return it->second;
    NetToRoute net;
    if (kind == 0) {
      net.driver_lut = ref.index;
      const LutSite site = placement.placement[static_cast<std::size_t>(ref.index)];
      net.source = {site.x, site.y};
    } else {
      net.driver_input = ref.index;
      const LutSite site = placement.input_pads[static_cast<std::size_t>(ref.index)];
      net.source = {site.x, site.y};
    }
    const int id = static_cast<int>(nets.size());
    nets.push_back(std::move(net));
    net_of_driver.emplace(key, id);
    return id;
  };

  for (std::size_t i = 0; i < netlist.luts.size(); ++i) {
    const LutSite site = placement.placement[i];
    for (unsigned k = 0; k < netlist.luts[i].num_inputs; ++k) {
      const int n = net_for(netlist.luts[i].inputs[k]);
      if (n < 0) continue;
      NetToRoute::SinkSpec sink;
      sink.lut = static_cast<int>(i);
      sink.input_pin = k;
      sink.cell = {site.x, site.y};
      nets[static_cast<std::size_t>(n)].sinks.push_back(sink);
    }
  }
  for (std::size_t o = 0; o < netlist.outputs.size(); ++o) {
    const int n = net_for(netlist.outputs[o].source);
    if (n < 0) continue;
    NetToRoute::SinkSpec sink;
    sink.output_index = static_cast<int>(o);
    const LutSite pad = placement.output_pads[o];
    sink.cell = {pad.x, pad.y};
    nets[static_cast<std::size_t>(n)].sinks.push_back(sink);
  }

  RouteResult result;
  std::vector<double> history(static_cast<std::size_t>(grid.size()), 0.0);
  std::vector<int> usage(static_cast<std::size_t>(grid.size()), 0);
  std::vector<std::vector<std::pair<int, int>>> sink_paths;  // flat, per (net, sink)

  const int dx[4] = {1, -1, 0, 0};
  const int dy[4] = {0, 0, 1, -1};

  for (unsigned iter = 1; iter <= options.max_iterations; ++iter) {
    result.iterations = iter;
    std::fill(usage.begin(), usage.end(), 0);
    sink_paths.clear();
    const double present_weight = options.present_factor * static_cast<double>(iter);

    for (auto& net : nets) {
      // Route to each sink with A*, reusing the growing tree (cells of the
      // net cost nothing to re-enter). Sort sinks near-to-far for better
      // trees.
      std::sort(net.sinks.begin(), net.sinks.end(),
                [&](const NetToRoute::SinkSpec& a, const NetToRoute::SinkSpec& b) {
                  const int da = std::abs(a.cell.first - net.source.first) +
                                 std::abs(a.cell.second - net.source.second);
                  const int db = std::abs(b.cell.first - net.source.first) +
                                 std::abs(b.cell.second - net.source.second);
                  return da < db;
                });

      std::map<int, unsigned> tree_hops;  // cell id -> hops from driver
      tree_hops[grid.id(net.source.first, net.source.second)] = 0;

      for (auto& sink : net.sinks) {
        const int goal = grid.id(sink.cell.first, sink.cell.second);
        // A* from the whole tree.
        std::vector<double> best_cost(static_cast<std::size_t>(grid.size()), 1e30);
        std::vector<int> parent(static_cast<std::size_t>(grid.size()), -2);
        using QE = std::pair<double, int>;  // (cost + heuristic, cell)
        std::priority_queue<QE, std::vector<QE>, std::greater<>> queue;
        auto heuristic = [&](int cell) {
          const int x = cell / grid.rows() - 1;
          const int y = cell % grid.rows();
          return static_cast<double>(std::abs(x - sink.cell.first) +
                                     std::abs(y - sink.cell.second));
        };
        for (const auto& [cell, hops] : tree_hops) {
          best_cost[static_cast<std::size_t>(cell)] = 0.0;
          parent[static_cast<std::size_t>(cell)] = -1;
          queue.emplace(heuristic(cell), cell);
        }
        int found = -1;
        while (!queue.empty()) {
          const auto [prio, cell] = queue.top();
          queue.pop();
          const double cost = prio - heuristic(cell);
          if (cost > best_cost[static_cast<std::size_t>(cell)] + 1e-9) continue;
          ++result.expansions;
          if (cell == goal) {
            found = cell;
            break;
          }
          const int x = cell / grid.rows() - 1;
          const int y = cell % grid.rows();
          for (int d = 0; d < 4; ++d) {
            const int nx = x + dx[d];
            const int ny = y + dy[d];
            if (!grid.valid(nx, ny)) continue;
            const int next = grid.id(nx, ny);
            const std::size_t ni = static_cast<std::size_t>(next);
            // IO register-bank columns are dedicated buses: no congestion.
            const bool io_column = (nx < 0 || nx >= static_cast<int>(geometry.width));
            const double over =
                io_column ? 0.0
                          : std::max(0, usage[ni] + 1 -
                                            static_cast<int>(geometry.channel_capacity));
            const double step = 1.0 + present_weight * over + history[ni];
            const double ncost = cost + step;
            if (ncost + 1e-9 < best_cost[ni]) {
              best_cost[ni] = ncost;
              parent[ni] = cell;
              queue.emplace(ncost + heuristic(next), next);
            }
          }
        }
        std::vector<std::pair<int, int>> path;
        if (found < 0) {
          // Unreachable (should not happen on a connected grid).
          sink_paths.push_back(path);
          continue;
        }
        // Trace back to the tree.
        std::vector<int> cells;
        int cur = found;
        while (parent[static_cast<std::size_t>(cur)] != -1) {
          cells.push_back(cur);
          cur = parent[static_cast<std::size_t>(cur)];
        }
        cells.push_back(cur);  // tree entry
        std::reverse(cells.begin(), cells.end());
        const unsigned entry_hops = tree_hops[cells.front()];
        for (std::size_t i = 0; i < cells.size(); ++i) {
          const int cell = cells[i];
          if (!tree_hops.count(cell)) {
            tree_hops[cell] = entry_hops + static_cast<unsigned>(i);
            ++usage[static_cast<std::size_t>(cell)];
          }
          path.emplace_back(cell / grid.rows() - 1, cell % grid.rows());
        }
        
        sink_paths.push_back(path);
      }
    }

    // Legality check (IO register-bank columns are uncapacitated).
    bool overused = false;
    for (std::size_t i = 0; i < usage.size(); ++i) {
      const int x = static_cast<int>(i) / grid.rows() - 1;
      if (x < 0 || x >= static_cast<int>(geometry.width)) continue;
      const int over = usage[i] - static_cast<int>(geometry.channel_capacity);
      if (over > 0) {
        overused = true;
        history[i] += options.history_factor * over;
      }
    }
    if (!overused) {
      result.success = true;
      break;
    }
  }

  // Convert to RoutedNet records (even on failure, for diagnostics).
  std::size_t flat = 0;
  for (const auto& net : nets) {
    RoutedNet routed;
    routed.driver_lut = net.driver_lut;
    routed.driver_input = net.driver_input;
    for (const auto& sink : net.sinks) {
      RoutedNet::Sink s;
      s.lut = sink.lut;
      s.output_index = sink.output_index;
      s.input_pin = sink.input_pin;
      if (flat < sink_paths.size()) s.path = sink_paths[flat];
      ++flat;
      result.max_hops = std::max(result.max_hops,
                                 static_cast<unsigned>(s.path.empty() ? 0 : s.path.size() - 1));
      routed.sinks.push_back(std::move(s));
    }
    result.routes.push_back(std::move(routed));
  }

  if (!result.success) {
    return common::Result<RouteResult>::error(common::format(
        "routing did not converge after %u iterations", result.iterations));
  }

  // Timing: arrival-time propagation. Net delay to a sink = io + hops*wire.
  std::vector<double> arrival(netlist.luts.size(), 0.0);
  std::vector<double> net_delay_to_lut_pin(netlist.luts.size() * techmap::kLutInputs, 0.0);
  std::vector<double> output_arrival(netlist.outputs.size(), 0.0);
  // Collect per-sink delays.
  for (const auto& routed : result.routes) {
    for (const auto& sink : routed.sinks) {
      const double hops = sink.path.empty() ? 0.0 : static_cast<double>(sink.path.size() - 1);
      const double delay = geometry.io_delay_ns * (routed.driver_input >= 0 ? 1.0 : 0.0) +
                           hops * geometry.wire_hop_delay_ns;
      if (sink.lut >= 0) {
        net_delay_to_lut_pin[static_cast<std::size_t>(sink.lut) * techmap::kLutInputs +
                             sink.input_pin] = delay;
      } else if (sink.output_index >= 0) {
        output_arrival[static_cast<std::size_t>(sink.output_index)] = delay;
      }
    }
  }
  // LUT ids are in topological order (techmap covers leaves first).
  double critical = 0.0;
  for (std::size_t i = 0; i < netlist.luts.size(); ++i) {
    double in_arrival = 0.0;
    for (unsigned k = 0; k < netlist.luts[i].num_inputs; ++k) {
      const NetRef& ref = netlist.luts[i].inputs[k];
      double src = 0.0;
      if (ref.kind == NetRef::Kind::kLut) src = arrival[static_cast<std::size_t>(ref.index)];
      in_arrival = std::max(in_arrival,
                            src + net_delay_to_lut_pin[i * techmap::kLutInputs + k]);
    }
    arrival[i] = in_arrival + geometry.lut_delay_ns;
    critical = std::max(critical, arrival[i]);
  }
  for (std::size_t o = 0; o < netlist.outputs.size(); ++o) {
    const NetRef& ref = netlist.outputs[o].source;
    double src = 0.0;
    if (ref.kind == NetRef::Kind::kLut) src = arrival[static_cast<std::size_t>(ref.index)];
    critical = std::max(critical, src + output_arrival[o] + geometry.io_delay_ns);
  }
  result.critical_path_ns = critical;
  return result;
}

common::Result<PnrResult> place_and_route(const LutNetlist& netlist,
                                          const fabric::FabricGeometry& geometry,
                                          const PnrOptions& options) {
  auto placed = place(netlist, geometry, options.place);
  if (!placed) return common::Result<PnrResult>::error(placed.message());
  auto routed = route(netlist, geometry, placed.value(), options.route);
  if (!routed) return common::Result<PnrResult>::error(routed.message());

  PnrResult result;
  result.place = std::move(placed).value();
  result.route = std::move(routed).value();

  result.config.geometry = geometry;
  result.config.netlist = netlist;
  result.config.placement = result.place.placement;
  result.config.input_pads = result.place.input_pads;
  result.config.output_pads = result.place.output_pads;
  result.config.routes = result.route.routes;
  result.config.critical_path_ns = result.route.critical_path_ns;
  return result;
}

}  // namespace warp::pnr
