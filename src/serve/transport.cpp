#include "serve/transport.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/strings.hpp"

namespace warp::serve {

namespace {

common::Status errno_status(const std::string& what) {
  return common::Status::error(what + ": " + std::strerror(errno));
}

bool make_unix_addr(const std::string& path, sockaddr_un& addr) {
  if (path.empty() || path.size() >= sizeof(addr.sun_path)) return false;
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return true;
}

common::Status make_tcp_addr(const Endpoint& endpoint, sockaddr_in& addr) {
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(endpoint.port);
  const std::string host = endpoint.host == "localhost" ? "127.0.0.1" : endpoint.host;
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return common::Status::error("bad IPv4 host: " + endpoint.host);
  }
  return common::Status::ok();
}

void set_nodelay(int fd) {
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

}  // namespace

std::string Endpoint::to_string() const {
  if (kind == Kind::kUnix) return "unix:" + path;
  return common::format("tcp:%s:%u", host.c_str(), static_cast<unsigned>(port));
}

common::Result<Endpoint> parse_endpoint(const std::string& spec) {
  using R = common::Result<Endpoint>;
  Endpoint endpoint;
  if (spec.rfind("unix:", 0) == 0) {
    endpoint.kind = Endpoint::Kind::kUnix;
    endpoint.path = spec.substr(5);
  } else if (spec.rfind("tcp:", 0) == 0) {
    endpoint.kind = Endpoint::Kind::kTcp;
    const std::string rest = spec.substr(4);
    const std::size_t colon = rest.rfind(':');
    if (colon == std::string::npos || colon == 0) {
      return R::error("tcp endpoint wants tcp:<host>:<port>: " + spec);
    }
    endpoint.host = rest.substr(0, colon);
    long long port = -1;
    if (!common::parse_int(rest.substr(colon + 1), port) || port < 0 || port > 65535) {
      return R::error("bad tcp port in: " + spec);
    }
    endpoint.port = static_cast<std::uint16_t>(port);
  } else if (spec.find(':') == std::string::npos || spec[0] == '/') {
    // Compatibility: a bare filesystem path is a unix endpoint.
    endpoint.kind = Endpoint::Kind::kUnix;
    endpoint.path = spec;
  } else {
    return R::error("unknown endpoint scheme: " + spec);
  }
  if (endpoint.kind == Endpoint::Kind::kUnix) {
    sockaddr_un addr{};
    if (!make_unix_addr(endpoint.path, addr)) {
      return R::error("bad socket path: " + endpoint.path);
    }
  } else if (endpoint.host.empty()) {
    return R::error("empty tcp host in: " + spec);
  }
  return endpoint;
}

common::Result<int> listen_endpoint(const Endpoint& endpoint, int backlog) {
  using R = common::Result<int>;
  if (endpoint.kind == Endpoint::Kind::kUnix) {
    sockaddr_un addr{};
    if (!make_unix_addr(endpoint.path, addr)) {
      return R::error("bad socket path: " + endpoint.path);
    }
    const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) return R::error(errno_status("socket").message());
    ::unlink(endpoint.path.c_str());
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
      const auto status = errno_status("bind " + endpoint.path);
      ::close(fd);
      return R::error(status.message());
    }
    if (::listen(fd, backlog) != 0) {
      const auto status = errno_status("listen");
      ::close(fd);
      return R::error(status.message());
    }
    return fd;
  }
  sockaddr_in addr{};
  if (const auto status = make_tcp_addr(endpoint, addr); !status) {
    return R::error(status.message());
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return R::error(errno_status("socket").message());
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    const auto status = errno_status("bind " + endpoint.to_string());
    ::close(fd);
    return R::error(status.message());
  }
  if (::listen(fd, backlog) != 0) {
    const auto status = errno_status("listen");
    ::close(fd);
    return R::error(status.message());
  }
  return fd;
}

common::Result<int> connect_endpoint(const Endpoint& endpoint) {
  using R = common::Result<int>;
  if (endpoint.kind == Endpoint::Kind::kUnix) {
    sockaddr_un addr{};
    if (!make_unix_addr(endpoint.path, addr)) {
      return R::error("bad socket path: " + endpoint.path);
    }
    const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) return R::error(errno_status("socket").message());
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
      const auto status = errno_status("connect " + endpoint.path);
      ::close(fd);
      return R::error(status.message());
    }
    return fd;
  }
  sockaddr_in addr{};
  if (const auto status = make_tcp_addr(endpoint, addr); !status) {
    return R::error(status.message());
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return R::error(errno_status("socket").message());
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    const auto status = errno_status("connect " + endpoint.to_string());
    ::close(fd);
    return R::error(status.message());
  }
  set_nodelay(fd);
  return fd;
}

common::Result<std::uint16_t> bound_port(int fd) {
  using R = common::Result<std::uint16_t>;
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return R::error(errno_status("getsockname").message());
  }
  if (addr.sin_family != AF_INET) return R::error("not a tcp socket");
  return static_cast<std::uint16_t>(ntohs(addr.sin_port));
}

void unlink_endpoint(const Endpoint& endpoint) {
  if (endpoint.kind == Endpoint::Kind::kUnix && !endpoint.path.empty()) {
    ::unlink(endpoint.path.c_str());
  }
}

}  // namespace warp::serve
