#include "serve/warpd.hpp"

#include <algorithm>

#include "workloads/workload.hpp"

namespace warp::serve {

namespace {

double ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
      .count();
}

// Admission-time checks that do not depend on engine state. Parsed requests
// already satisfy these; in-process callers can construct Request directly,
// so re-check here.
std::string validate_request(const protocol::Request& request) {
  if (workloads::find_workload(request.workload) == nullptr) {
    return "unknown workload: " + request.workload;
  }
  const protocol::RequestOverrides& o = request.overrides;
  if (o.packed_width && *o.packed_width != 0 && *o.packed_width != 1 &&
      *o.packed_width != 2 && *o.packed_width != 4) {
    return "bad packed_width (want 0, 1, 2 or 4)";
  }
  if (o.max_candidates && (*o.max_candidates < 1 || *o.max_candidates > 64)) {
    return "bad max_candidates (want 1..64)";
  }
  if (o.csd_max_terms && *o.csd_max_terms > 16) {
    return "bad csd_max_terms (want 0..16)";
  }
  return {};
}

struct BuiltSession {
  std::unique_ptr<warpsys::WarpSystem> system;
  common::Digest kernel_hash;
};

// Assemble the session's WarpSystem with the request's overrides applied,
// and compute the kernel content hash that decides shard ownership: the
// program words plus the overridable knobs that change what the DPM
// computes. Host-only knobs (packed_width) stay out — they never change
// artifacts, so they must not split a kernel across shards.
common::Result<BuiltSession> build_session(const protocol::Request& request,
                                           const experiments::HarnessOptions& base) {
  using R = common::Result<BuiltSession>;
  experiments::HarnessOptions options = base;
  options.cache = nullptr;  // the engine passes its shared cache per DPM call
  const protocol::RequestOverrides& o = request.overrides;
  if (o.packed_width) options.system.packed.width = *o.packed_width;
  if (o.max_candidates) options.system.dpm.max_candidates = *o.max_candidates;
  if (o.csd_max_terms) options.system.dpm.synth.csd_max_terms = *o.csd_max_terms;
  auto systems = experiments::build_warp_systems({request.workload}, options);
  if (!systems) return R::error(systems.message());
  BuiltSession built;
  built.system = std::move(std::move(systems).value()[0]);
  common::Hasher hasher;
  const std::vector<std::uint32_t>& words = built.system->program().words;
  hasher.u64(words.size());
  for (const std::uint32_t word : words) hasher.u32(word);
  const auto& dpm = built.system->config().dpm;
  hasher.u32(dpm.max_candidates);
  hasher.u32(dpm.synth.csd_max_terms);
  built.kernel_hash = hasher.finish();
  return built;
}

}  // namespace

ShardRing::ShardRing(unsigned shards, unsigned points_per_shard)
    : shards_(std::max(1u, shards)) {
  points_.reserve(static_cast<std::size_t>(shards_) * points_per_shard);
  for (unsigned shard = 0; shard < shards_; ++shard) {
    for (unsigned point = 0; point < points_per_shard; ++point) {
      common::Hasher hasher;
      hasher.str("warpd.ring").u32(shard).u32(point);
      points_.emplace_back(hasher.finish().lo, shard);
    }
  }
  std::sort(points_.begin(), points_.end());
}

unsigned ShardRing::owner(const common::Digest& key) const {
  if (shards_ == 1 || points_.empty()) return 0;
  const std::uint64_t position = key.lo;
  auto it = std::lower_bound(points_.begin(), points_.end(),
                             std::make_pair(position, 0u));
  if (it == points_.end()) it = points_.begin();  // wrap
  return it->second;
}

Warpd::Warpd(WarpdOptions options)
    : options_(std::move(options)),
      n_shards_(std::max(1u, options_.shards)),
      n_workers_(options_.workers ? options_.workers : std::thread::hardware_concurrency()),
      ring_(n_shards_, std::max(1u, options_.ring_points_per_shard)) {
  if (n_workers_ == 0) n_workers_ = 1;
  shard_queues_.resize(n_shards_);
  stats_.shards.resize(n_shards_);
  for (unsigned s = 0; s < n_shards_; ++s) {
    shard_cvs_.push_back(std::make_unique<std::condition_variable>());
  }
  threads_.reserve(1 + n_shards_ + n_workers_);
  threads_.emplace_back([this] { sequencer_main(); });
  for (unsigned s = 0; s < n_shards_; ++s) {
    threads_.emplace_back([this, s] { shard_main(s); });
  }
  for (unsigned w = 0; w < n_workers_; ++w) {
    threads_.emplace_back([this] { worker_main(); });
  }
}

Warpd::~Warpd() { stop(); }

void Warpd::submit(const protocol::Request& request, Callback done) {
  std::string err = validate_request(request);
  std::unique_lock lock(mutex_);
  if (err.empty() && stopping_) err = "server is stopping";
  if (err.empty()) {
    if (request.seq) {
      if (seq_mode_ == SeqMode::kImplicit) {
        err = "seq on a stream that started without seq";
      } else if (*request.seq < next_seq_) {
        err = "seq already served";
      } else if (!used_seqs_.insert(*request.seq).second) {
        err = "duplicate seq";
      } else {
        seq_mode_ = SeqMode::kExplicit;
      }
    } else {
      if (seq_mode_ == SeqMode::kExplicit) {
        err = "missing seq on a stream that started with seq";
      } else {
        seq_mode_ = SeqMode::kImplicit;
      }
    }
  }
  if (!err.empty()) {
    ++stats_.rejected;
    lock.unlock();
    SessionOutcome out;
    out.id = request.id;
    out.error = std::move(err);
    if (done) done(out);
    return;
  }
  auto session = std::make_unique<Session>();
  Session& s = *session;
  s.request = request;
  s.done = std::move(done);
  s.admitted = std::chrono::steady_clock::now();
  s.index = sessions_.size();
  s.seq = request.seq ? *request.seq : static_cast<std::uint64_t>(s.index);
  s.entry.name = request.workload;
  pending_waits_[s.seq] = &s;
  sessions_.push_back(std::move(session));
  ++stats_.admitted;
  worker_cv_.notify_one();
}

void Warpd::drain() {
  std::unique_lock lock(mutex_);
  done_cv_.wait(lock, [&] { return stats_.completed == stats_.admitted; });
}

void Warpd::stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopped_) return;
    stopping_ = true;
    worker_cv_.notify_all();
  }
  for (std::thread& t : threads_) t.join();
  threads_.clear();
  std::lock_guard<std::mutex> lock(mutex_);
  stopped_ = true;
}

WarpdStats Warpd::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  WarpdStats stats = stats_;
  stats.latencies_ms.clear();
  stats.latencies_ms.reserve(latencies_by_seq_.size());
  for (const auto& [seq, latency] : latencies_by_seq_) stats.latencies_ms.push_back(latency);
  return stats;
}

void Warpd::worker_main() {
  std::unique_lock lock(mutex_);
  for (;;) {
    worker_cv_.wait(lock, [&] { return next_claim_ < sessions_.size() || stopping_; });
    if (next_claim_ >= sessions_.size()) {
      if (stopping_) break;
      continue;
    }
    Session& s = *sessions_[next_claim_++];
    lock.unlock();

    // Build + profiled run, outside the lock; no other thread knows this
    // session yet.
    common::Digest kernel_hash{};
    auto built = build_session(s.request, options_.base);
    if (built) {
      BuiltSession b = std::move(built).value();
      s.system = std::move(b.system);
      kernel_hash = b.kernel_hash;
      s.has_job = warpsys::profile_phase(*s.system, s.entry);
    } else {
      s.entry.detail = built.message();
    }

    lock.lock();
    if (s.has_job) {
      s.shard = ring_.owner(kernel_hash);
      if (kernels_seen_.insert({kernel_hash.hi, kernel_hash.lo}).second) {
        ++stats_.unique_kernels;
      }
      shard_queues_[s.shard].insert({s.seq, s.index});
      shard_cvs_[s.shard]->notify_one();
      grant_cv_.wait(lock, [&] { return s.dpm_done; });
    } else {
      s.dpm_done = true;
      seq_cv_.notify_all();
    }
    const bool has_job = s.has_job;
    const bool partitioned = s.partitioned;
    lock.unlock();
    if (has_job) warpsys::warped_phase(*s.system, s.entry, partitioned);
    lock.lock();
    s.runs_done = true;
    auto delivery = try_finalize_locked(s);
    if (delivery) {
      lock.unlock();
      deliver(std::move(delivery));
      lock.lock();
    }
  }
  // Exiting with the lock held: the last worker out releases the shard and
  // sequencer threads (their queues are final once no worker can enqueue).
  if (++workers_exited_ == n_workers_) {
    for (auto& cv : shard_cvs_) cv->notify_all();
    seq_cv_.notify_all();
  }
}

void Warpd::shard_main(unsigned shard) {
  std::unique_lock lock(mutex_);
  auto& queue = shard_queues_[shard];
  std::condition_variable& cv = *shard_cvs_[shard];
  for (;;) {
    cv.wait(lock, [&] {
      return !queue.empty() || (stopping_ && workers_exited_ == n_workers_);
    });
    if (queue.empty()) break;
    // Pop the owned job with the lowest virtual admission slot. Repeats of
    // one kernel are owned by this shard and thus serialized here — the
    // first occurrence computes, later ones resolve from the shared cache.
    const std::size_t index = queue.begin()->second;
    queue.erase(queue.begin());
    Session& s = *sessions_[index];
    lock.unlock();
    const auto start = std::chrono::steady_clock::now();
    const bool partitioned =
        warpsys::dpm_phase(*s.system, s.entry, options_.cache, options_.fault);
    const double busy_ms = ms_since(start);
    lock.lock();
    s.partitioned = partitioned;
    s.dpm_done = true;
    stats_.shards[shard].jobs += 1;
    stats_.shards[shard].busy_ms += busy_ms;
    grant_cv_.notify_all();
    seq_cv_.notify_all();
  }
}

void Warpd::sequencer_main() {
  std::unique_lock lock(mutex_);
  for (;;) {
    seq_cv_.wait(lock, [&] {
      const bool collapse = stopping_ && workers_exited_ == n_workers_;
      if (pending_waits_.empty()) return collapse;
      const auto& head = *pending_waits_.begin();
      return head.second->dpm_done && (head.first == next_seq_ || collapse);
    });
    if (pending_waits_.empty()) break;
    Session& s = *pending_waits_.begin()->second;
    pending_waits_.erase(pending_waits_.begin());
    if (s.has_job) {
      // The one place virtual DPM time advances: strictly in seq order,
      // with run_multiprocessor's arithmetic (DpmVirtualClock).
      s.entry.dpm_wait_seconds = clock_.start(s.entry.sw_seconds);
      clock_.finish(s.entry.dpm_seconds);
    }
    next_seq_ = s.seq + 1;
    s.wait_done = true;
    auto delivery = try_finalize_locked(s);
    if (delivery) {
      lock.unlock();
      deliver(std::move(delivery));
      lock.lock();
    }
  }
}

std::optional<Warpd::Delivery> Warpd::try_finalize_locked(Session& s) {
  if (s.finalized || !s.runs_done || !s.wait_done) return std::nullopt;
  s.finalized = true;
  SessionOutcome out;
  out.id = s.request.id;
  out.seq = s.seq;
  out.entry = s.entry;
  out.shard = s.shard;
  out.latency_ms = ms_since(s.admitted);
  latencies_by_seq_[s.seq] = out.latency_ms;
  ++stats_.completed;
  s.system.reset();  // bound live memory to in-flight sessions
  done_cv_.notify_all();
  return Delivery{std::move(s.done), std::move(out)};
}

void Warpd::deliver(std::optional<Delivery> delivery) {
  if (delivery && delivery->first) delivery->first(delivery->second);
}

std::vector<SessionOutcome> run_serial(const std::vector<protocol::Request>& requests,
                                       const WarpdOptions& options) {
  const ShardRing ring(std::max(1u, options.shards),
                       std::max(1u, options.ring_points_per_shard));
  struct Row {
    bool accepted = false;
    bool has_job = false;
  };
  std::vector<SessionOutcome> outcomes(requests.size());
  std::vector<Row> rows(requests.size());

  // Admission mirrors Warpd::submit: same rejections, same seq assignment.
  enum class SeqMode { kUnset, kImplicit, kExplicit };
  SeqMode mode = SeqMode::kUnset;
  std::set<std::uint64_t> used_seqs;
  std::uint64_t implicit_seq = 0;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const protocol::Request& request = requests[i];
    SessionOutcome& out = outcomes[i];
    out.id = request.id;
    std::string err = validate_request(request);
    if (err.empty()) {
      if (request.seq) {
        if (mode == SeqMode::kImplicit) {
          err = "seq on a stream that started without seq";
        } else if (!used_seqs.insert(*request.seq).second) {
          err = "duplicate seq";
        } else {
          mode = SeqMode::kExplicit;
        }
      } else {
        if (mode == SeqMode::kExplicit) {
          err = "missing seq on a stream that started with seq";
        } else {
          mode = SeqMode::kImplicit;
        }
      }
    }
    if (!err.empty()) {
      out.error = std::move(err);
      continue;
    }
    rows[i].accepted = true;
    out.seq = request.seq ? *request.seq : implicit_seq++;
    out.entry.name = request.workload;

    const auto admitted = std::chrono::steady_clock::now();
    auto built = build_session(request, options.base);
    if (built) {
      BuiltSession b = std::move(built).value();
      out.shard = ring.owner(b.kernel_hash);
      rows[i].has_job = warpsys::profile_phase(*b.system, out.entry);
      if (rows[i].has_job) {
        const bool partitioned =
            warpsys::dpm_phase(*b.system, out.entry, options.cache, options.fault);
        warpsys::warped_phase(*b.system, out.entry, partitioned);
      }
    } else {
      out.entry.detail = built.message();
    }
    out.latency_ms = ms_since(admitted);
  }

  // Virtual DPM accounting in seq order — the engine's exact arithmetic.
  std::map<std::uint64_t, std::size_t> by_seq;
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    if (rows[i].accepted) by_seq[outcomes[i].seq] = i;
  }
  warpsys::DpmVirtualClock clock;
  for (const auto& [seq, i] : by_seq) {
    if (!rows[i].has_job) continue;
    outcomes[i].entry.dpm_wait_seconds = clock.start(outcomes[i].entry.sw_seconds);
    clock.finish(outcomes[i].entry.dpm_seconds);
  }
  return outcomes;
}

}  // namespace warp::serve
