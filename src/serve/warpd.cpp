#include "serve/warpd.hpp"

#include <algorithm>

#include "workloads/workload.hpp"

namespace warp::serve {

namespace {

double ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
      .count();
}

// Admission-time checks that do not depend on engine state. Parsed requests
// already satisfy these; in-process callers can construct Request directly,
// so re-check here.
std::string validate_request(const protocol::Request& request) {
  if (workloads::find_workload(request.workload) == nullptr) {
    return "unknown workload: " + request.workload;
  }
  const protocol::RequestOverrides& o = request.overrides;
  if (o.packed_width && *o.packed_width != 0 && *o.packed_width != 1 &&
      *o.packed_width != 2 && *o.packed_width != 4) {
    return "bad packed_width (want 0, 1, 2 or 4)";
  }
  if (o.max_candidates && (*o.max_candidates < 1 || *o.max_candidates > 64)) {
    return "bad max_candidates (want 1..64)";
  }
  if (o.csd_max_terms && *o.csd_max_terms > 16) {
    return "bad csd_max_terms (want 0..16)";
  }
  if (request.deadline_ms &&
      (*request.deadline_ms == 0 || *request.deadline_ms > protocol::kMaxDeadlineMs)) {
    return "bad deadline_ms (want 1..86400000)";
  }
  return {};
}

// Coalescing identity: everything that can change a session's result table
// row. packed_width is host-only for the DPM but may still shape the entry,
// so the key covers the full override set — two requests coalesce only when
// their entries are provably interchangeable.
std::string coalesce_key_of(const protocol::Request& request) {
  const protocol::RequestOverrides& o = request.overrides;
  std::string key = request.workload;
  key += '|';
  key += o.packed_width ? std::to_string(*o.packed_width) : std::string("-");
  key += '|';
  key += o.max_candidates ? std::to_string(*o.max_candidates) : std::string("-");
  key += '|';
  key += o.csd_max_terms ? std::to_string(*o.csd_max_terms) : std::string("-");
  return key;
}

struct BuiltSession {
  std::unique_ptr<warpsys::WarpSystem> system;
  common::Digest kernel_hash;
};

// Assemble the session's WarpSystem with the request's overrides applied,
// and compute the kernel content hash that decides shard ownership: the
// program words plus the overridable knobs that change what the DPM
// computes. Host-only knobs (packed_width) stay out — they never change
// artifacts, so they must not split a kernel across shards.
common::Result<BuiltSession> build_session(const protocol::Request& request,
                                           const experiments::HarnessOptions& base) {
  using R = common::Result<BuiltSession>;
  experiments::HarnessOptions options = base;
  options.cache = nullptr;  // the engine passes its shared cache per DPM call
  const protocol::RequestOverrides& o = request.overrides;
  if (o.packed_width) options.system.packed.width = *o.packed_width;
  if (o.max_candidates) options.system.dpm.max_candidates = *o.max_candidates;
  if (o.csd_max_terms) options.system.dpm.synth.csd_max_terms = *o.csd_max_terms;
  auto systems = experiments::build_warp_systems({request.workload}, options);
  if (!systems) return R::error(systems.message());
  BuiltSession built;
  built.system = std::move(std::move(systems).value()[0]);
  common::Hasher hasher;
  const std::vector<std::uint32_t>& words = built.system->program().words;
  hasher.u64(words.size());
  for (const std::uint32_t word : words) hasher.u32(word);
  const auto& dpm = built.system->config().dpm;
  hasher.u32(dpm.max_candidates);
  hasher.u32(dpm.synth.csd_max_terms);
  built.kernel_hash = hasher.finish();
  return built;
}

}  // namespace

namespace {

std::vector<unsigned> dense_members(unsigned shards) {
  std::vector<unsigned> members(std::max(1u, shards));
  for (unsigned m = 0; m < members.size(); ++m) members[m] = m;
  return members;
}

}  // namespace

ShardRing::ShardRing(unsigned shards, unsigned points_per_shard)
    : ShardRing(dense_members(shards), points_per_shard) {}

ShardRing::ShardRing(const std::vector<unsigned>& members, unsigned points_per_shard)
    : shards_(static_cast<unsigned>(members.size())) {
  points_.reserve(static_cast<std::size_t>(members.size()) * points_per_shard);
  for (const unsigned member : members) {
    for (unsigned point = 0; point < points_per_shard; ++point) {
      common::Hasher hasher;
      hasher.str("warpd.ring").u32(member).u32(point);
      points_.emplace_back(hasher.finish().lo, member);
    }
  }
  std::sort(points_.begin(), points_.end());
}

unsigned ShardRing::owner(const common::Digest& key) const {
  if (points_.empty()) return 0;
  const std::uint64_t position = key.lo;
  auto it = std::lower_bound(points_.begin(), points_.end(),
                             std::make_pair(position, 0u));
  if (it == points_.end()) it = points_.begin();  // wrap
  return it->second;
}

std::optional<std::uint64_t> AdmissionController::try_admit() {
  const std::uint64_t bytes_after = bytes_ + options_.session_bytes;
  const bool over =
      (options_.max_sessions != 0 && sessions_ + 1 > options_.max_sessions) ||
      (options_.max_queued != 0 && queued_ + 1 > options_.max_queued) ||
      (options_.max_bytes != 0 && bytes_after > options_.max_bytes);
  if (over) return retry_hint_ms();
  ++sessions_;
  ++queued_;
  bytes_ = bytes_after;
  peak_sessions_ = std::max<std::uint64_t>(peak_sessions_, sessions_);
  peak_queued_ = std::max<std::uint64_t>(peak_queued_, queued_);
  peak_bytes_ = std::max(peak_bytes_, bytes_);
  return std::nullopt;
}

std::uint64_t AdmissionController::retry_hint_ms() const {
  const std::uint64_t hint =
      options_.busy_retry_ms * (static_cast<std::uint64_t>(queued_) + 1);
  return std::max<std::uint64_t>(1, std::min(options_.busy_retry_cap_ms, hint));
}

void AdmissionController::started() {
  if (queued_ > 0) --queued_;
}

void AdmissionController::finished() {
  if (sessions_ > 0) --sessions_;
  bytes_ -= std::min(bytes_, options_.session_bytes);
}

Warpd::Warpd(WarpdOptions options)
    : options_(std::move(options)),
      n_shards_(std::max(1u, options_.shards)),
      n_workers_(options_.workers ? options_.workers : std::thread::hardware_concurrency()),
      ring_(n_shards_, std::max(1u, options_.ring_points_per_shard)),
      admission_(options_.admission) {
  if (n_workers_ == 0) n_workers_ = 1;
  shard_queues_.resize(n_shards_);
  stats_.shards.resize(n_shards_);
  for (unsigned s = 0; s < n_shards_; ++s) {
    shard_cvs_.push_back(std::make_unique<std::condition_variable>());
  }
  threads_.reserve(2 + n_shards_ + n_workers_);
  threads_.emplace_back([this] { sequencer_main(); });
  threads_.emplace_back([this] { deadline_main(); });
  for (unsigned s = 0; s < n_shards_; ++s) {
    threads_.emplace_back([this, s] { shard_main(s); });
  }
  for (unsigned w = 0; w < n_workers_; ++w) {
    threads_.emplace_back([this] { worker_main(); });
  }
}

Warpd::~Warpd() { stop(); }

void Warpd::submit(const protocol::Request& request, Callback done) {
  std::string err = validate_request(request);
  std::unique_lock lock(mutex_);
  if (err.empty() && stopping_) err = "server is stopping";
  // Seq checks, without committing: a shed request must not burn a seq slot
  // or lock the stream's seq mode.
  if (err.empty()) {
    if (request.seq) {
      if (seq_mode_ == SeqMode::kImplicit) {
        err = "seq on a stream that started without seq";
      } else if (*request.seq < next_seq_) {
        err = "seq already served";
      } else if (used_seqs_.count(*request.seq) != 0) {
        err = "duplicate seq";
      }
    } else if (seq_mode_ == SeqMode::kExplicit) {
      err = "missing seq on a stream that started with seq";
    }
  }
  std::optional<std::uint64_t> busy;
  if (err.empty()) {
    if (draining_) {
      busy = admission_.drain_retry_ms();
    } else if (options_.fault != nullptr && options_.admission.enabled() &&
               options_.fault->probe("serve.admit", common::FaultKind::kIoError)) {
      // An injected admission-bookkeeping failure sheds the request exactly
      // like a full queue: deterministic busy, no session state touched.
      busy = admission_.retry_hint_ms();
    } else {
      busy = admission_.try_admit();
    }
    if (busy) ++stats_.busy_rejected;
  }
  if (!err.empty() || busy) {
    if (!busy) ++stats_.rejected;
    lock.unlock();
    SessionOutcome out;
    out.id = request.id;
    out.node = options_.node_id;
    if (busy) {
      out.status = protocol::ReplyStatus::kBusy;
      out.error = "busy";
      out.retry_after_ms = *busy;
    } else {
      out.status = protocol::ReplyStatus::kErr;
      out.error = std::move(err);
    }
    if (done) done(out);
    return;
  }
  if (request.seq) {
    used_seqs_.insert(*request.seq);
    seq_mode_ = SeqMode::kExplicit;
  } else {
    seq_mode_ = SeqMode::kImplicit;
  }
  auto session = std::make_unique<Session>();
  Session& s = *session;
  s.request = request;
  s.done = std::move(done);
  s.admitted = std::chrono::steady_clock::now();
  if (request.deadline_ms) {
    s.deadline = s.admitted + std::chrono::milliseconds(*request.deadline_ms);
  }
  s.index = sessions_.size();
  s.seq = request.seq ? *request.seq : static_cast<std::uint64_t>(s.index);
  s.entry.name = request.workload;
  pending_waits_[s.seq] = &s;
  sessions_.push_back(std::move(session));
  ++stats_.admitted;
  worker_cv_.notify_one();
  if (s.deadline) deadline_cv_.notify_all();
}

void Warpd::begin_drain() {
  std::lock_guard<std::mutex> lock(mutex_);
  draining_ = true;
}

bool Warpd::draining() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return draining_;
}

void Warpd::drain() {
  std::unique_lock lock(mutex_);
  done_cv_.wait(lock, [&] { return stats_.completed == stats_.admitted; });
}

void Warpd::stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopped_) return;
    stopping_ = true;
    worker_cv_.notify_all();
    deadline_cv_.notify_all();
  }
  for (std::thread& t : threads_) t.join();
  threads_.clear();
  std::lock_guard<std::mutex> lock(mutex_);
  stopped_ = true;
}

WarpdStats Warpd::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  WarpdStats stats = stats_;
  stats.max_queue_depth = admission_.peak_queued();
  stats.peak_sessions = admission_.peak_sessions();
  stats.peak_bytes = admission_.peak_bytes();
  stats.draining = draining_;
  stats.latencies_ms.clear();
  stats.latencies_ms.reserve(latencies_by_seq_.size());
  for (const auto& [seq, latency] : latencies_by_seq_) stats.latencies_ms.push_back(latency);
  return stats;
}

void Warpd::worker_main() {
  std::unique_lock lock(mutex_);
  for (;;) {
    worker_cv_.wait(lock, [&] { return next_claim_ < sessions_.size() || stopping_; });
    if (next_claim_ >= sessions_.size()) {
      if (stopping_) break;
      continue;
    }
    Session& s = *sessions_[next_claim_++];
    if (s.claimed) continue;  // the deadliner already resolved it
    if (s.deadline && std::chrono::steady_clock::now() >= *s.deadline) {
      // Claim-time expiry: same outcome as a deadliner cancellation — the
      // session never starts, never charges the clock.
      cancel_locked(s);
      continue;
    }
    s.claimed = true;
    admission_.started();
    if (options_.coalesce) {
      const std::string key = coalesce_key_of(s.request);
      auto leader = inflight_leaders_.find(key);
      if (leader != inflight_leaders_.end()) {
        // Identical request already in flight: subscribe as a follower and
        // free this worker. The leader resolves us when it lands.
        sessions_[leader->second]->followers.push_back(s.index);
        continue;
      }
      inflight_leaders_.emplace(key, s.index);
      s.coalesce_key = key;
    }
    ++stats_.pipeline_runs;
    lock.unlock();

    // Build + profiled run, outside the lock; no other thread touches the
    // session's pipeline state until the job is filed.
    common::Digest kernel_hash{};
    auto built = build_session(s.request, options_.base);
    if (built) {
      BuiltSession b = std::move(built).value();
      s.system = std::move(b.system);
      kernel_hash = b.kernel_hash;
      s.has_job = warpsys::profile_phase(*s.system, s.entry);
    } else {
      s.entry.detail = built.message();
    }

    lock.lock();
    if (s.has_job) {
      s.shard = ring_.owner(kernel_hash);
      if (kernels_seen_.insert({kernel_hash.hi, kernel_hash.lo}).second) {
        ++stats_.unique_kernels;
      }
      shard_queues_[s.shard].insert({s.seq, s.index});
      shard_cvs_[s.shard]->notify_one();
      grant_cv_.wait(lock, [&] { return s.dpm_done; });
    } else {
      s.dpm_done = true;
      seq_cv_.notify_all();
    }
    const bool has_job = s.has_job;
    const bool partitioned = s.partitioned;
    lock.unlock();
    if (has_job) warpsys::warped_phase(*s.system, s.entry, partitioned);
    lock.lock();
    s.runs_done = true;
    std::vector<Delivery> deliveries;
    resolve_followers_locked(s, deliveries);
    if (auto delivery = try_finalize_locked(s)) deliveries.push_back(std::move(*delivery));
    if (!deliveries.empty()) {
      lock.unlock();
      for (Delivery& d : deliveries) deliver(std::move(d));
      lock.lock();
    }
  }
  // Exiting with the lock held: the last worker out releases the shard and
  // sequencer threads (their queues are final once no worker can enqueue).
  if (++workers_exited_ == n_workers_) {
    for (auto& cv : shard_cvs_) cv->notify_all();
    seq_cv_.notify_all();
  }
}

void Warpd::shard_main(unsigned shard) {
  std::unique_lock lock(mutex_);
  auto& queue = shard_queues_[shard];
  std::condition_variable& cv = *shard_cvs_[shard];
  for (;;) {
    cv.wait(lock, [&] {
      return !queue.empty() || (stopping_ && workers_exited_ == n_workers_);
    });
    if (queue.empty()) break;
    // Pop the owned job with the lowest virtual admission slot. Repeats of
    // one kernel are owned by this shard and thus serialized here — the
    // first occurrence computes, later ones resolve from the shared cache.
    const std::size_t index = queue.begin()->second;
    queue.erase(queue.begin());
    Session& s = *sessions_[index];
    lock.unlock();
    const auto start = std::chrono::steady_clock::now();
    const bool partitioned =
        warpsys::dpm_phase(*s.system, s.entry, options_.cache, options_.fault);
    const double busy_ms = ms_since(start);
    lock.lock();
    s.partitioned = partitioned;
    s.dpm_done = true;
    stats_.shards[shard].jobs += 1;
    stats_.shards[shard].busy_ms += busy_ms;
    grant_cv_.notify_all();
    seq_cv_.notify_all();
  }
}

void Warpd::sequencer_main() {
  std::unique_lock lock(mutex_);
  for (;;) {
    seq_cv_.wait(lock, [&] {
      const bool collapse = stopping_ && workers_exited_ == n_workers_;
      if (pending_waits_.empty()) return collapse;
      const auto& head = *pending_waits_.begin();
      return head.second->dpm_done && (head.first == next_seq_ || collapse);
    });
    if (pending_waits_.empty()) break;
    Session& s = *pending_waits_.begin()->second;
    pending_waits_.erase(pending_waits_.begin());
    if (s.has_job) {
      // The one place virtual DPM time advances: strictly in seq order,
      // with run_multiprocessor's arithmetic (DpmVirtualClock). Followers
      // are charged here like anyone else — coalescing saved the host CAD
      // work, not the session's virtual service.
      s.entry.dpm_wait_seconds = clock_.start(s.entry.sw_seconds);
      clock_.finish(s.entry.dpm_seconds);
    }
    next_seq_ = s.seq + 1;
    s.wait_done = true;
    auto delivery = try_finalize_locked(s);
    if (delivery) {
      lock.unlock();
      deliver(std::move(delivery));
      lock.lock();
    }
  }
}

void Warpd::deadline_main() {
  std::unique_lock lock(mutex_);
  for (;;) {
    const auto now = std::chrono::steady_clock::now();
    std::optional<std::chrono::steady_clock::time_point> next;
    for (std::size_t i = next_claim_; i < sessions_.size(); ++i) {
      Session& s = *sessions_[i];
      if (s.claimed || !s.deadline) continue;
      if (*s.deadline <= now) {
        cancel_locked(s);
      } else if (!next || *s.deadline < *next) {
        next = *s.deadline;
      }
    }
    if (stopping_) break;  // claim-time checks cover the shutdown window
    if (next) {
      deadline_cv_.wait_until(lock, *next);
    } else {
      deadline_cv_.wait(lock);
    }
  }
}

void Warpd::cancel_locked(Session& s) {
  s.claimed = true;
  admission_.started();  // it leaves the claim queue, cancelled
  s.status = protocol::ReplyStatus::kTimeout;
  s.message = "deadline_ms=" +
              std::to_string(s.request.deadline_ms ? *s.request.deadline_ms : 0) +
              " elapsed before the session started";
  s.has_job = false;  // the sequencer passes it without charging the clock
  s.dpm_done = true;
  s.runs_done = true;
  ++stats_.timeouts;
  seq_cv_.notify_all();
}

void Warpd::resolve_followers_locked(Session& leader, std::vector<Delivery>& out) {
  if (!leader.coalesce_key.empty()) {
    inflight_leaders_.erase(leader.coalesce_key);
    leader.coalesce_key.clear();
  }
  if (leader.followers.empty()) return;
  for (const std::size_t index : leader.followers) {
    Session& f = *sessions_[index];
    f.entry = leader.entry;
    // The sequencer assigns f's own wait at f's seq turn; the leader's
    // (possibly already-assigned) wait must not leak through the copy.
    f.entry.dpm_wait_seconds = 0.0;
    f.shard = leader.shard;
    f.has_job = leader.has_job;
    f.partitioned = leader.partitioned;
    f.dpm_done = true;
    f.runs_done = true;
    ++stats_.coalesced;
    if (auto delivery = try_finalize_locked(f)) out.push_back(std::move(*delivery));
  }
  leader.followers.clear();
  seq_cv_.notify_all();
}

std::optional<Warpd::Delivery> Warpd::try_finalize_locked(Session& s) {
  if (s.finalized || !s.runs_done || !s.wait_done) return std::nullopt;
  s.finalized = true;
  SessionOutcome out;
  out.id = s.request.id;
  out.seq = s.seq;
  out.status = s.status;
  out.error = s.message;
  out.entry = s.entry;
  out.shard = s.shard;
  out.node = options_.node_id;
  out.latency_ms = ms_since(s.admitted);
  if (s.status == protocol::ReplyStatus::kOk) {
    latencies_by_seq_[s.seq] = out.latency_ms;
  }
  ++stats_.completed;
  admission_.finished();
  s.system.reset();  // bound live memory to in-flight sessions
  done_cv_.notify_all();
  return Delivery{std::move(s.done), std::move(out)};
}

void Warpd::deliver(std::optional<Delivery> delivery) {
  if (delivery && delivery->first) delivery->first(delivery->second);
}

std::vector<SessionOutcome> run_serial(const std::vector<protocol::Request>& requests,
                                       const WarpdOptions& options) {
  const ShardRing ring(std::max(1u, options.shards),
                       std::max(1u, options.ring_points_per_shard));
  struct Row {
    bool accepted = false;
    bool has_job = false;
  };
  std::vector<SessionOutcome> outcomes(requests.size());
  std::vector<Row> rows(requests.size());

  // Admission mirrors Warpd::submit: same rejections, same seq assignment.
  // Serial execution is uncontended, so admission caps and deadlines never
  // fire — every valid request is accepted.
  enum class SeqMode { kUnset, kImplicit, kExplicit };
  SeqMode mode = SeqMode::kUnset;
  std::set<std::uint64_t> used_seqs;
  std::uint64_t implicit_seq = 0;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const protocol::Request& request = requests[i];
    SessionOutcome& out = outcomes[i];
    out.id = request.id;
    out.node = options.node_id;
    std::string err = validate_request(request);
    if (err.empty()) {
      if (request.seq) {
        if (mode == SeqMode::kImplicit) {
          err = "seq on a stream that started without seq";
        } else if (!used_seqs.insert(*request.seq).second) {
          err = "duplicate seq";
        } else {
          mode = SeqMode::kExplicit;
        }
      } else {
        if (mode == SeqMode::kExplicit) {
          err = "missing seq on a stream that started with seq";
        } else {
          mode = SeqMode::kImplicit;
        }
      }
    }
    if (!err.empty()) {
      out.status = protocol::ReplyStatus::kErr;
      out.error = std::move(err);
      continue;
    }
    rows[i].accepted = true;
    out.seq = request.seq ? *request.seq : implicit_seq++;
    out.entry.name = request.workload;

    const auto admitted = std::chrono::steady_clock::now();
    auto built = build_session(request, options.base);
    if (built) {
      BuiltSession b = std::move(built).value();
      out.shard = ring.owner(b.kernel_hash);
      rows[i].has_job = warpsys::profile_phase(*b.system, out.entry);
      if (rows[i].has_job) {
        const bool partitioned =
            warpsys::dpm_phase(*b.system, out.entry, options.cache, options.fault);
        warpsys::warped_phase(*b.system, out.entry, partitioned);
      }
    } else {
      out.entry.detail = built.message();
    }
    out.latency_ms = ms_since(admitted);
  }

  // Virtual DPM accounting in seq order — the engine's exact arithmetic.
  std::map<std::uint64_t, std::size_t> by_seq;
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    if (rows[i].accepted) by_seq[outcomes[i].seq] = i;
  }
  warpsys::DpmVirtualClock clock;
  for (const auto& [seq, i] : by_seq) {
    if (!rows[i].has_job) continue;
    outcomes[i].entry.dpm_wait_seconds = clock.start(outcomes[i].entry.sw_seconds);
    clock.finish(outcomes[i].entry.dpm_seconds);
  }
  return outcomes;
}

common::Result<common::Digest> kernel_digest_for(const protocol::Request& request,
                                                 const experiments::HarnessOptions& base) {
  using R = common::Result<common::Digest>;
  const std::string err = validate_request(request);
  if (!err.empty()) return R::error(err);
  auto built = build_session(request, base);
  if (!built) return R::error(built.message());
  return built.value().kernel_hash;
}

}  // namespace warp::serve
