// Multi-host warpd cluster: ShardRing session routing + store replication.
//
// A ClusterNode wraps one SocketServer with the cluster hooks (server.hpp):
//
//   routing     every client "warp" request is keyed by its kernel content
//               hash (the same digest the engine shards by) and routed on a
//               ShardRing over the *live* member ids. The owner executes it;
//               any other node forwards it over a fresh connection, tagging
//               the request fwd=<origin> so the owner always executes
//               locally — a stale ring view can bounce a session at most
//               once, never loop it. Repeats of one kernel thus land on one
//               node's one shard: cluster-wide, each unique kernel is
//               computed once and every repeat is a cache hit.
//   failover    peers are health-checked by a heartbeat thread (fresh-
//               connection pings on a seeded-deterministic jittered period;
//               `heartbeat_misses` consecutive failures mark a peer down,
//               one success revives it). A down peer leaves the ring — the
//               membership ShardRing reassigns only the ranges its points
//               owned (smooth resharding). A forward that fails or times
//               out marks the peer down immediately and falls back to
//               executing the session on the local pipeline, so every
//               accepted session completes (the paper's software-fallback
//               guarantee, lifted to cluster scope).
//   replication the node's DiskArtifactStore is wrapped in a
//               partition::ReplicatedStore whose peers speak the line
//               protocol's replication ops (sput/sget/slist); the "repair"
//               control op runs an anti-entropy round. Envelopes are hex-
//               encoded on the wire and re-validated outside-in on receipt,
//               so a corrupted replica is quarantined and never poisons a
//               peer.
//
// Determinism: each node keeps its own sequencer and virtual DPM clock, so
// each node's accepted subsequence is bit-identical to run_serial over that
// subsequence; ok replies carry node= so clients can group replies by
// admitting node and replay each node's wait chain independently. The
// *pure* result fields (everything but dpm_wait_seconds) are node-
// independent — the pipeline is deterministic — so per-session bit-identity
// against the serial reference holds wherever a session lands, including
// after a mid-chaos local fallback.
//
// Delivery semantics: forwarding is at-most-once after send — a reply lost
// to a link fault is NOT retransmitted (that could double-charge the
// owner's virtual clock); the origin marks the peer down and recomputes
// locally. The client still sees exactly one reply per request. Replication
// and control ops are idempotent and retried with the bounded exponential
// backoff discipline. Fault sites on every peer link: "cluster.connect",
// "cluster.write", "cluster.read" (kIoError).
//
// Partition/slow-link simulation (what the chaos harness drives): the
// control ops "peer_down id=N" / "peer_up id=N" make this node treat peer N
// as partitioned (no forwards, no replication, no heartbeats — applied on
// both sides for a symmetric partition), and "peer_slow id=N ms=M" delays
// every operation on that link by M host milliseconds.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/fault_injector.hpp"
#include "common/rng.hpp"
#include "partition/replicated_store.hpp"
#include "serve/server.hpp"

namespace warp::serve {

struct ClusterOptions {
  /// This node's id — an index into `members`.
  std::uint32_t node_id = 0;
  /// Endpoint spec per node id, cluster-wide and identical on every node;
  /// members[node_id] is the endpoint this node serves.
  std::vector<std::string> members;
  /// The wrapped server/engine configuration. `path`, the cluster hooks and
  /// `engine.node_id` are overwritten by start(); `engine.cache` should be
  /// `cache` below. max_line_bytes is raised to fit replication envelopes.
  SocketServerOptions server;
  /// The artifact cache the engine uses (not owned; may be null). start()
  /// re-attaches it to the ReplicatedStore wrapping `store`.
  partition::ArtifactCache* cache = nullptr;
  /// This node's local disk store (not owned; may be null to disable
  /// replication).
  partition::DiskArtifactStore* store = nullptr;
  /// Injector for the cluster.* peer-link sites (not owned; may be null).
  common::FaultInjector* fault = nullptr;
  /// Heartbeat period; each cycle sleeps period + seeded jitter in
  /// [0, period/4].
  std::uint64_t heartbeat_ms = 100;
  /// Consecutive failed pings before a peer is marked down.
  unsigned heartbeat_misses = 3;
  /// Seed for the heartbeat jitter stream (xor-folded with node_id so nodes
  /// sharing a config do not phase-lock).
  std::uint64_t heartbeat_seed = 0x5EED5EED5EED5EEDull;
  /// How long a forwarded session may take end to end before the origin
  /// gives up and recomputes locally. Generous: a forward that merely
  /// queues at the owner must not spuriously fall back.
  std::uint64_t forward_timeout_ms = 60'000;
  /// Timeout for one replication/control RPC attempt.
  std::uint64_t rpc_timeout_ms = 5'000;
  /// Attempts per idempotent RPC (heartbeats use exactly two, so one
  /// transient injected fault cannot flap a live peer).
  int io_retries = 4;
  /// Bounded exponential backoff between RPC attempts (same discipline as
  /// the server/store layers).
  unsigned retry_backoff_us = 200;
  unsigned retry_backoff_cap_us = 50'000;
};

struct ClusterNodeStats {
  std::uint64_t forwards = 0;          // sessions sent to their ring owner
  std::uint64_t forward_failures = 0;  // forwards that died on the link
  std::uint64_t local_fallbacks = 0;   // failed forwards recomputed locally
  std::uint64_t forwarded_in = 0;      // fwd=-tagged sessions executed here
  std::uint64_t heartbeats = 0;        // pings answered "pong"
  std::uint64_t heartbeat_failures = 0;
  std::uint64_t peers_up = 0;          // live peers right now
  std::uint64_t peers_total = 0;
};

class ClusterNode {
 public:
  explicit ClusterNode(ClusterOptions options);
  ~ClusterNode();
  ClusterNode(const ClusterNode&) = delete;
  ClusterNode& operator=(const ClusterNode&) = delete;

  /// Wire the hooks, attach the replicated store, start the server and the
  /// heartbeat thread.
  common::Status start();

  /// Stop heartbeats, detach the replicated store (the cache falls back to
  /// the plain local store) and stop the server. Idempotent.
  void stop();

  /// Graceful drain of the wrapped server (in-flight sessions finish).
  void drain();

  SocketServer& server() { return *server_; }
  /// The bound TCP port (resolves a tcp:...:0 member spec).
  std::uint16_t port() const { return server_->port(); }
  ClusterNodeStats stats() const;
  partition::ReplicatedStore* replicated() { return replicated_.get(); }

 private:
  struct Peer {
    unsigned id = 0;
    std::string spec;
    std::atomic<bool> alive{true};
    std::atomic<bool> admin_down{false};   // simulated partition
    std::atomic<std::uint64_t> slow_ms{0}; // simulated slow link
    std::atomic<unsigned> missed{0};       // consecutive failed heartbeats
  };
  class RemotePeer;  // ReplicaPeer over the replication ops

  void route(const protocol::Request& request, Warpd::Callback done);
  std::optional<std::string> control(std::string_view line);
  std::string extra_stats();
  void heartbeat_main();

  bool peer_live(const Peer& peer) const {
    return peer.alive.load() && !peer.admin_down.load();
  }
  /// The live-member ring owner for a kernel digest.
  unsigned owner_of(const common::Digest& digest) const;
  /// Kernel digest for a request, memoized per digest-relevant override key.
  std::optional<common::Digest> digest_for(const protocol::Request& request);
  /// Forward one session to `peer`; nullopt = link failure (caller marks
  /// the peer down and falls back). At-most-once after send.
  std::optional<protocol::Reply> forward(Peer& peer, const protocol::Request& request);
  /// One idempotent request/reply exchange with bounded retries.
  common::Result<std::string> rpc(Peer& peer, const std::string& line,
                                  std::uint64_t timeout_ms, int attempts);
  void mark_down(Peer& peer);
  void simulate_slow(const Peer& peer);
  bool probe(const char* site);
  void backoff(int attempt);

  ClusterOptions options_;
  std::vector<std::unique_ptr<Peer>> peers_;  // every member but this node
  std::vector<std::unique_ptr<RemotePeer>> replica_peers_;
  std::unique_ptr<partition::ReplicatedStore> replicated_;

  std::atomic<bool> closing_{false};
  bool started_ = false;
  std::mutex hb_mutex_;               // guards hb_cv_ sleeps and hb_rng_
  std::condition_variable hb_cv_;
  common::Rng hb_rng_;
  std::thread heartbeat_thread_;

  mutable std::mutex mutex_;  // guards stats_, digests_, backoff_rng_
  ClusterNodeStats stats_;
  std::map<std::string, common::Digest> digests_;
  common::Rng backoff_rng_;

  std::unique_ptr<SocketServer> server_;  // declared last: destroyed first
};

}  // namespace warp::serve
