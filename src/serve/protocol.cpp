#include "serve/protocol.hpp"

#include <cstdlib>

#include "common/strings.hpp"

namespace warp::serve::protocol {

namespace {

using common::Result;

bool parse_u64(std::string_view value, std::uint64_t& out) {
  long long parsed = 0;
  if (!common::parse_int(value, parsed) || parsed < 0) return false;
  out = static_cast<std::uint64_t>(parsed);
  return true;
}

bool parse_bounded(std::string_view value, unsigned lo, unsigned hi, unsigned& out) {
  std::uint64_t parsed = 0;
  if (!parse_u64(value, parsed) || parsed < lo || parsed > hi) return false;
  out = static_cast<unsigned>(parsed);
  return true;
}

// Free-text fields ride on a line protocol; keep them one line.
std::string sanitize(std::string text) {
  for (char& c : text) {
    if (c == '\n' || c == '\r') c = ' ';
  }
  return text;
}

bool parse_double(std::string_view value, double& out) {
  const std::string token(value);
  if (token.empty()) return false;
  char* end = nullptr;
  out = std::strtod(token.c_str(), &end);
  return end == token.c_str() + token.size();
}

}  // namespace

Result<Request> parse_request(std::string_view line) {
  using R = Result<Request>;
  const auto tokens = common::split(line, " \t");
  if (tokens.empty()) return R::error("empty request");
  if (tokens[0] != "warp") {
    return R::error("unknown verb: " + std::string(tokens[0].substr(0, 32)));
  }

  Request request;
  bool have_id = false;
  bool have_workload = false;
  // Duplicate detection without allocation: one flag per known key.
  bool seen_seq = false, seen_deadline = false;
  bool seen_width = false, seen_cand = false, seen_csd = false, seen_fwd = false;
  for (std::size_t t = 1; t < tokens.size(); ++t) {
    const std::string_view token = tokens[t];
    const std::size_t eq = token.find('=');
    if (eq == std::string_view::npos || eq == 0) {
      return R::error("malformed field: " + std::string(token.substr(0, 32)));
    }
    const std::string_view key = token.substr(0, eq);
    const std::string_view value = token.substr(eq + 1);
    if (value.empty()) return R::error("empty value for " + std::string(key));
    if (key == "id") {
      if (have_id) return R::error("duplicate id");
      if (!parse_u64(value, request.id)) return R::error("bad id");
      have_id = true;
    } else if (key == "workload") {
      if (have_workload) return R::error("duplicate workload");
      request.workload = std::string(value);
      have_workload = true;
    } else if (key == "seq") {
      if (seen_seq) return R::error("duplicate seq");
      std::uint64_t seq = 0;
      if (!parse_u64(value, seq)) return R::error("bad seq");
      request.seq = seq;
      seen_seq = true;
    } else if (key == "deadline_ms") {
      if (seen_deadline) return R::error("duplicate deadline_ms");
      std::uint64_t deadline = 0;
      if (!parse_u64(value, deadline) || deadline == 0 || deadline > kMaxDeadlineMs) {
        return R::error("bad deadline_ms (want 1..86400000)");
      }
      request.deadline_ms = deadline;
      seen_deadline = true;
    } else if (key == "packed_width") {
      if (seen_width) return R::error("duplicate packed_width");
      unsigned width = 0;
      if (!parse_bounded(value, 0, 4, width) || width == 3) {
        return R::error("bad packed_width (want 0, 1, 2 or 4)");
      }
      request.overrides.packed_width = width;
      seen_width = true;
    } else if (key == "max_candidates") {
      if (seen_cand) return R::error("duplicate max_candidates");
      unsigned candidates = 0;
      if (!parse_bounded(value, 1, 64, candidates)) {
        return R::error("bad max_candidates (want 1..64)");
      }
      request.overrides.max_candidates = candidates;
      seen_cand = true;
    } else if (key == "csd_max_terms") {
      if (seen_csd) return R::error("duplicate csd_max_terms");
      unsigned terms = 0;
      if (!parse_bounded(value, 0, 16, terms)) {
        return R::error("bad csd_max_terms (want 0..16)");
      }
      request.overrides.csd_max_terms = terms;
      seen_csd = true;
    } else if (key == "fwd") {
      if (seen_fwd) return R::error("duplicate fwd");
      std::uint64_t origin = 0;
      if (!parse_u64(value, origin) || origin > kMaxNodeId) {
        return R::error("bad fwd (want 0..1023)");
      }
      request.forwarded_from = static_cast<std::uint32_t>(origin);
      seen_fwd = true;
    } else {
      return R::error("unknown key: " + std::string(key.substr(0, 32)));
    }
  }
  if (!have_id) return R::error("missing id");
  if (!have_workload) return R::error("missing workload");
  return request;
}

std::string encode_request(const Request& request) {
  std::string line = common::format("warp id=%llu workload=%s",
                                    static_cast<unsigned long long>(request.id),
                                    request.workload.c_str());
  if (request.seq) {
    line += common::format(" seq=%llu", static_cast<unsigned long long>(*request.seq));
  }
  if (request.deadline_ms) {
    line += common::format(" deadline_ms=%llu",
                           static_cast<unsigned long long>(*request.deadline_ms));
  }
  if (request.overrides.packed_width) {
    line += common::format(" packed_width=%u", *request.overrides.packed_width);
  }
  if (request.overrides.max_candidates) {
    line += common::format(" max_candidates=%u", *request.overrides.max_candidates);
  }
  if (request.overrides.csd_max_terms) {
    line += common::format(" csd_max_terms=%u", *request.overrides.csd_max_terms);
  }
  if (request.forwarded_from) {
    line += common::format(" fwd=%u", static_cast<unsigned>(*request.forwarded_from));
  }
  return line;
}

Reply make_ok_reply(std::uint64_t id, const warpsys::MultiWarpEntry& entry) {
  Reply reply;
  reply.status = ReplyStatus::kOk;
  reply.ok = true;
  reply.id = id;
  reply.workload = entry.name;
  reply.warped = entry.warped;
  reply.sw_seconds = entry.sw_seconds;
  reply.warped_seconds = entry.warped_seconds;
  reply.speedup = entry.speedup;
  reply.dpm_seconds = entry.dpm_seconds;
  reply.dpm_wait_seconds = entry.dpm_wait_seconds;
  reply.detail = entry.detail;
  return reply;
}

Reply make_error_reply(std::uint64_t id, std::string message) {
  Reply reply;
  reply.status = ReplyStatus::kErr;
  reply.ok = false;
  reply.id = id;
  reply.detail = std::move(message);
  return reply;
}

Reply make_busy_reply(std::uint64_t id, std::uint64_t retry_after_ms) {
  Reply reply;
  reply.status = ReplyStatus::kBusy;
  reply.ok = false;
  reply.id = id;
  reply.retry_after_ms = retry_after_ms;
  return reply;
}

Reply make_timeout_reply(std::uint64_t id, std::string message) {
  Reply reply;
  reply.status = ReplyStatus::kTimeout;
  reply.ok = false;
  reply.id = id;
  reply.detail = std::move(message);
  return reply;
}

std::string encode_reply(const Reply& reply) {
  if (reply.status == ReplyStatus::kBusy) {
    return common::format("busy id=%llu retry_ms=%llu",
                          static_cast<unsigned long long>(reply.id),
                          static_cast<unsigned long long>(reply.retry_after_ms));
  }
  if (reply.status == ReplyStatus::kTimeout) {
    return common::format("timeout id=%llu msg=%s",
                          static_cast<unsigned long long>(reply.id),
                          sanitize(reply.detail).c_str());
  }
  if (!reply.ok) {
    return common::format("err id=%llu msg=%s",
                          static_cast<unsigned long long>(reply.id),
                          sanitize(reply.detail).c_str());
  }
  return common::format(
      "ok id=%llu workload=%s warped=%d sw_s=%.17g warped_s=%.17g speedup=%.17g "
      "dpm_s=%.17g wait_s=%.17g node=%u detail=%s",
      static_cast<unsigned long long>(reply.id), reply.workload.c_str(),
      reply.warped ? 1 : 0, reply.sw_seconds, reply.warped_seconds, reply.speedup,
      reply.dpm_seconds, reply.dpm_wait_seconds, static_cast<unsigned>(reply.node),
      sanitize(reply.detail).c_str());
}

Result<Reply> parse_reply(std::string_view line) {
  using R = Result<Reply>;
  Reply reply;
  if (common::starts_with(line, "busy ")) {
    // All-strict-token verb: id and retry_ms, each exactly once.
    reply.status = ReplyStatus::kBusy;
    reply.ok = false;
    bool have_id = false, have_retry = false;
    for (const std::string_view token : common::split(line.substr(5), " \t")) {
      const std::size_t eq = token.find('=');
      if (eq == std::string_view::npos || eq == 0) return R::error("malformed busy field");
      const std::string_view key = token.substr(0, eq);
      const std::string_view value = token.substr(eq + 1);
      if (key == "id" && !have_id) {
        if (!parse_u64(value, reply.id)) return R::error("bad busy id");
        have_id = true;
      } else if (key == "retry_ms" && !have_retry) {
        if (!parse_u64(value, reply.retry_after_ms)) return R::error("bad retry_ms");
        have_retry = true;
      } else {
        return R::error("unknown or repeated busy key: " + std::string(key.substr(0, 32)));
      }
    }
    if (!have_id || !have_retry) return R::error("busy reply missing fields");
    return reply;
  }
  std::string_view tail;  // the final free-text field's marker + content
  if (common::starts_with(line, "ok ")) {
    reply.status = ReplyStatus::kOk;
    reply.ok = true;
    const std::size_t pos = line.find(" detail=");
    if (pos == std::string_view::npos) return R::error("ok reply without detail=");
    reply.detail = std::string(line.substr(pos + 8));
    tail = line.substr(3, pos - 3);
  } else if (common::starts_with(line, "err ")) {
    reply.status = ReplyStatus::kErr;
    reply.ok = false;
    const std::size_t pos = line.find(" msg=");
    if (pos == std::string_view::npos) return R::error("err reply without msg=");
    reply.detail = std::string(line.substr(pos + 5));
    tail = line.substr(4, pos - 4);
  } else if (common::starts_with(line, "timeout ")) {
    reply.status = ReplyStatus::kTimeout;
    reply.ok = false;
    const std::size_t pos = line.find(" msg=");
    if (pos == std::string_view::npos) return R::error("timeout reply without msg=");
    reply.detail = std::string(line.substr(pos + 5));
    tail = line.substr(8, pos - 8);
  } else {
    return R::error("unknown reply verb");
  }

  bool have_id = false;
  // The ok payload: every field must appear exactly once (node= is optional
  // for compatibility with pre-cluster reply lines).
  bool have_workload = false, have_warped = false, have_sw = false, have_warped_s = false,
       have_speedup = false, have_dpm = false, have_wait = false, have_node = false;
  for (const std::string_view token : common::split(tail, " \t")) {
    const std::size_t eq = token.find('=');
    if (eq == std::string_view::npos || eq == 0) return R::error("malformed reply field");
    const std::string_view key = token.substr(0, eq);
    const std::string_view value = token.substr(eq + 1);
    if (key == "id" && !have_id) {
      if (!parse_u64(value, reply.id)) return R::error("bad reply id");
      have_id = true;
    } else if (reply.ok && key == "workload" && !have_workload) {
      reply.workload = std::string(value);
      have_workload = true;
    } else if (reply.ok && key == "warped" && !have_warped) {
      if (value != "0" && value != "1") return R::error("bad warped flag");
      reply.warped = value == "1";
      have_warped = true;
    } else if (reply.ok && key == "sw_s" && !have_sw) {
      if (!parse_double(value, reply.sw_seconds)) return R::error("bad sw_s");
      have_sw = true;
    } else if (reply.ok && key == "warped_s" && !have_warped_s) {
      if (!parse_double(value, reply.warped_seconds)) return R::error("bad warped_s");
      have_warped_s = true;
    } else if (reply.ok && key == "speedup" && !have_speedup) {
      if (!parse_double(value, reply.speedup)) return R::error("bad speedup");
      have_speedup = true;
    } else if (reply.ok && key == "dpm_s" && !have_dpm) {
      if (!parse_double(value, reply.dpm_seconds)) return R::error("bad dpm_s");
      have_dpm = true;
    } else if (reply.ok && key == "wait_s" && !have_wait) {
      if (!parse_double(value, reply.dpm_wait_seconds)) return R::error("bad wait_s");
      have_wait = true;
    } else if (reply.ok && key == "node" && !have_node) {
      std::uint64_t node = 0;
      if (!parse_u64(value, node) || node > kMaxNodeId) return R::error("bad node");
      reply.node = static_cast<std::uint32_t>(node);
      have_node = true;
    } else {
      return R::error("unknown or repeated reply key: " + std::string(key.substr(0, 32)));
    }
  }
  if (!have_id) return R::error("reply missing id");
  if (reply.ok && !(have_workload && have_warped && have_sw && have_warped_s &&
                    have_speedup && have_dpm && have_wait)) {
    return R::error("ok reply missing fields");
  }
  return reply;
}

warpsys::MultiWarpEntry entry_of(const Reply& reply) {
  warpsys::MultiWarpEntry entry;
  entry.name = reply.workload;
  entry.detail = reply.detail;
  entry.sw_seconds = reply.sw_seconds;
  entry.warped_seconds = reply.warped_seconds;
  entry.speedup = reply.speedup;
  entry.dpm_seconds = reply.dpm_seconds;
  entry.dpm_wait_seconds = reply.dpm_wait_seconds;
  entry.warped = reply.warped;
  return entry;
}

std::string hex_encode(std::string_view bytes) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2);
  for (const char c : bytes) {
    const auto b = static_cast<unsigned char>(c);
    out.push_back(kHex[b >> 4]);
    out.push_back(kHex[b & 0xF]);
  }
  return out;
}

common::Result<std::string> hex_decode(std::string_view hex) {
  using R = common::Result<std::string>;
  if (hex.size() % 2 != 0) return R::error("odd hex length");
  auto nibble = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    return -1;
  };
  std::string out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    const int hi = nibble(hex[i]);
    const int lo = nibble(hex[i + 1]);
    if (hi < 0 || lo < 0) return R::error("bad hex byte");
    out.push_back(static_cast<char>((hi << 4) | lo));
  }
  return out;
}

}  // namespace warp::serve::protocol
