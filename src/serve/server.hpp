// Socket front end for the warpd engine (unix-domain or TCP transport).
//
// One listener thread accepts connections; one reader thread per connection
// frames '\n'-delimited request lines (protocol.hpp), submits them to the
// shared Warpd engine and writes each session's reply line when its
// callback fires. Replies are written in completion order — clients
// correlate by the echoed id. Malformed, oversized and unknown-workload
// lines are answered with "err" replies; nothing a client sends can crash
// or stop the server (fuzz-gated by tests/warpd_proto_test.cpp).
//
// Transport: `path` is an endpoint spec parsed by transport.hpp —
// "unix:<path>" / a bare filesystem path (AF_UNIX, the original transport)
// or "tcp:<host>:<port>" (AF_INET; port 0 auto-assigns, see port()). The
// line protocol is byte-identical over either, so every determinism gate
// holds across transports.
//
// Cluster hooks (all optional, all unset for a standalone server):
//   route        called instead of Warpd::submit for each well-formed warp
//                request — the cluster coordinator forwards the session to
//                its ShardRing owner or falls back to the local engine. The
//                callback must fire exactly once, like Warpd::submit's.
//   control      offered every non-"warp" line the built-in ops don't
//                claim; returning a line answers it (replication and peer
//                control ops live here), nullopt falls through to the
//                normal unknown-verb error.
//   extra_stats  appended to the "stats" reply line ("k=v k=v" text) —
//                forwarding/replication counters ride here.
// The stats op also reports per-site injected-fault counters from the
// attached injectors ("fault.<site>=N"), so harnesses can assert a fault
// schedule actually fired instead of inferring it from timing.
//
// Fault injection: the sites "serve.accept", "serve.read" and
// "serve.write" (kIoError) model a flaky front end; "serve.drain" models
// the final store-flush barrier of a graceful drain. Every site is wrapped
// in the store's bounded retry-with-backoff discipline, so a transient
// schedule (max_consecutive < io_retries) is absorbed invisibly — sessions
// complete bit-identically. A persistent fault degrades cleanly, never
// fatally: accept never admits the connection (clients see a hang, the
// server keeps serving others and shuts down cleanly), a dead read drops
// the rest of the connection's input after in-flight sessions finish, and
// a dead write drops that connection's remaining replies while sessions
// still complete server-side.
//
// Retry backoff is exponential in the attempt number with a seeded
// deterministic jitter (common::Rng) and a hard cap, so a persistent-fault
// retry storm neither synchronizes across connections nor grows unbounded,
// and a given seed reproduces the exact sleep schedule.
//
// Graceful drain: the "drain" protocol op or request_drain() (what a
// daemon's SIGTERM handler calls) makes the engine shed all new sessions
// as "busy" while in-flight ones finish; drain() then waits them out,
// probes the serve.drain flush barrier and stops the server. A supervisor
// observing drain_requested() can exit 0 afterwards — the persistent store
// is write-through, so the next incarnation starts warm.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/fault_injector.hpp"
#include "common/rng.hpp"
#include "serve/transport.hpp"
#include "serve/warpd.hpp"

namespace warp::serve {

struct SocketServerOptions {
  /// Endpoint spec ("unix:<path>", bare path, or "tcp:<host>:<port>"); see
  /// transport.hpp. Unix sockets are unlinked and rebound by start().
  std::string path;
  WarpdOptions engine;
  /// Attempts per accept/read/write step under fault injection; must exceed
  /// the FaultConfig max_consecutive cap for transient schedules to
  /// converge (mirrors DiskStoreOptions::io_retries).
  int io_retries = 4;
  /// Base backoff sleep; attempt k sleeps in [b, 2b] for b =
  /// min(retry_backoff_us << k, retry_backoff_cap_us) with seeded jitter.
  unsigned retry_backoff_us = 50;
  unsigned retry_backoff_cap_us = 20'000;
  /// Seed for the jitter stream; a fixed seed reproduces the exact backoff
  /// schedule (in call order), distinct seeds decorrelate servers.
  std::uint64_t backoff_seed = 0x9E3779B97F4A7C15ull;
  std::size_t max_line_bytes = protocol::kMaxLineBytes;
  /// Injector for the serve.* sites (not owned; may be null). May be the
  /// same injector as engine.fault or a different one.
  common::FaultInjector* fault = nullptr;
  /// Cluster hooks — see the header comment. All optional.
  std::function<void(const protocol::Request&, Warpd::Callback)> route;
  std::function<std::optional<std::string>(std::string_view)> control;
  std::function<std::string()> extra_stats;
};

struct SocketServerStats {
  std::uint64_t connections = 0;
  std::uint64_t requests = 0;        // well-formed request lines submitted
  std::uint64_t replies = 0;         // reply/pong lines fully written
  std::uint64_t parse_errors = 0;    // lines answered with an err reply
  std::uint64_t oversized_lines = 0;
  std::uint64_t accept_faults = 0;   // injected accept failures absorbed
  std::uint64_t read_faults = 0;     // injected read failures absorbed
  std::uint64_t write_faults = 0;    // injected write failures absorbed
  std::uint64_t read_failures = 0;   // read budget exhausted: input dropped
  std::uint64_t write_failures = 0;  // write budget exhausted: conn muted
  std::uint64_t drain_faults = 0;    // injected drain-flush failures absorbed
};

class SocketServer {
 public:
  explicit SocketServer(SocketServerOptions options);
  ~SocketServer();
  SocketServer(const SocketServer&) = delete;
  SocketServer& operator=(const SocketServer&) = delete;

  /// Bind + listen + start accepting. Error if the socket cannot be bound.
  common::Status start();

  /// The bound TCP port after start() (resolves a tcp:...:0 spec); 0 for
  /// unix endpoints.
  std::uint16_t port() const { return port_; }
  /// The parsed endpoint after start(), with any auto-assigned port filled.
  const Endpoint& endpoint() const { return endpoint_; }

  /// Stop accepting, finish every admitted session (Warpd::stop), write the
  /// remaining replies, close all connections and join every thread.
  /// Idempotent; the destructor calls it.
  void stop();

  /// Begin a graceful drain: the engine sheds every new session as "busy"
  /// while in-flight ones finish. Async-signal-unsafe (takes locks) — a
  /// SIGTERM handler sets a flag and the supervisor loop calls this.
  /// Idempotent; also triggered by the "drain" protocol op.
  void request_drain();
  bool drain_requested() const { return drain_requested_.load(); }

  /// Finish a graceful drain: wait out in-flight sessions, probe the
  /// serve.drain store-flush barrier (bounded retries; the write-through
  /// store makes it structurally a no-op) and stop(). Calls request_drain()
  /// first if nobody did. Returns once the server is fully stopped.
  void drain();

  Warpd& engine() { return *engine_; }
  SocketServerStats stats() const;
  const SocketServerOptions& options() const { return options_; }

 private:
  struct Connection {
    int fd = -1;
    std::mutex mutex;              // guards writes, `dead` and `outstanding`
    std::condition_variable idle;  // outstanding -> 0
    bool dead = false;             // write side failed; drop future replies
    std::uint64_t outstanding = 0; // submitted sessions awaiting their reply
  };

  void accept_main();
  void connection_main(std::shared_ptr<Connection> conn);
  void handle_line(const std::shared_ptr<Connection>& conn, std::string_view line);
  std::string stats_line();
  /// Serialize + write one line (appending '\n') with the retry discipline.
  bool write_line(Connection& conn, const std::string& line);
  bool probe(const char* site);
  void backoff(int attempt);

  SocketServerOptions options_;
  std::unique_ptr<Warpd> engine_;
  Endpoint endpoint_;
  std::uint16_t port_ = 0;
  int listen_fd_ = -1;
  std::atomic<bool> closing_{false};
  std::atomic<bool> drain_requested_{false};
  bool started_ = false;
  bool stopped_ = false;
  std::mutex backoff_mutex_;  // guards backoff_rng_ only
  common::Rng backoff_rng_;

  mutable std::mutex mutex_;  // guards stats_, connections_, threads_
  SocketServerStats stats_;
  std::vector<std::shared_ptr<Connection>> connections_;
  std::vector<std::thread> threads_;  // reader threads
  std::thread accept_thread_;
};

/// Minimal blocking line-oriented client, for tests, the bench drivers and
/// the cluster's peer links. connect() takes the same endpoint specs as the
/// server.
class Client {
 public:
  Client() = default;
  ~Client();
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  common::Status connect(const std::string& spec);
  /// Write `line` + '\n'.
  common::Status send_line(const std::string& line);
  /// Write raw bytes with no framing added (tests send partial lines).
  common::Status send_raw(const std::string& bytes);
  /// Next '\n'-delimited line, newline stripped. Error on EOF/failure.
  common::Result<std::string> read_line();
  /// read_line with a deadline: error "timeout" if no full line arrives
  /// within `timeout_ms` (bytes already buffered are kept for a later try).
  common::Result<std::string> read_line_for(std::uint64_t timeout_ms);
  /// Half-close: no more sends; the server still writes pending replies.
  void shutdown_send();
  void close();
  bool connected() const { return fd_ >= 0; }

 private:
  int fd_ = -1;
  std::string buffer_;
};

}  // namespace warp::serve
