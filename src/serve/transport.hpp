// Stream transport abstraction for the warpd line protocol.
//
// warpd speaks one line-delimited protocol over any connected byte stream;
// this header is the only place that knows how such streams are made. Two
// transports exist:
//
//   unix:<path>        AF_UNIX stream socket bound at <path>. A bare string
//                      with no "<scheme>:" prefix parses as a unix path too,
//                      so every pre-TCP endpoint string keeps working.
//   tcp:<host>:<port>  AF_INET stream socket. <host> is a dotted-quad IPv4
//                      literal or "localhost"; <port> 0 asks the kernel for
//                      a free port, which bound_port() then reports — the
//                      cluster harness uses that to spawn N nodes without a
//                      port registry. TCP_NODELAY is set on every connected
//                      socket: the protocol is small single-line RPCs and
//                      Nagle would serialize them against delayed ACKs.
//
// The fault-injection, framing, retry and backoff machinery all live above
// this layer (server.hpp / cluster.hpp) and are transport-independent — the
// line protocol, and therefore every determinism gate, is byte-identical
// over either transport.
#pragma once

#include <cstdint>
#include <string>

#include "common/error.hpp"

namespace warp::serve {

struct Endpoint {
  enum class Kind : std::uint8_t { kUnix, kTcp };
  Kind kind = Kind::kUnix;
  std::string path;           // kUnix: filesystem path of the socket
  std::string host;           // kTcp: IPv4 literal (or "localhost")
  std::uint16_t port = 0;     // kTcp: 0 = kernel-assigned

  /// Canonical spec string ("unix:/run/w.sock", "tcp:127.0.0.1:7070").
  std::string to_string() const;
};

/// Parse an endpoint spec: "unix:<path>", "tcp:<host>:<port>", or a bare
/// path (compatibility spelling of unix). Errors on empty paths, non-numeric
/// or out-of-range ports and unknown schemes.
common::Result<Endpoint> parse_endpoint(const std::string& spec);

/// Create + bind + listen a server socket for `endpoint` (CLOEXEC set).
/// Unix endpoints unlink any stale socket first; TCP endpoints bind with
/// SO_REUSEADDR. Returns the listening fd.
common::Result<int> listen_endpoint(const Endpoint& endpoint, int backlog);

/// Blocking connect to `endpoint` (CLOEXEC + TCP_NODELAY). Returns the
/// connected fd.
common::Result<int> connect_endpoint(const Endpoint& endpoint);

/// The local port a bound TCP fd actually got (resolves port 0). Errors on
/// unix fds.
common::Result<std::uint16_t> bound_port(int fd);

/// Remove a unix endpoint's socket file; no-op for TCP.
void unlink_endpoint(const Endpoint& endpoint);

}  // namespace warp::serve
