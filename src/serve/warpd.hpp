// warpd: a multi-session warp serving engine on the shared DPM.
//
// One admitted request = one warp session: a fresh WarpSystem is built for
// the named workload (with the request's config overrides), pushed through
// the profile -> DPM -> warped phases of warp_system.hpp, and reported as a
// MultiWarpEntry — exactly the Figure-4 methodology, but request-driven and
// long-running instead of batch.
//
// Host architecture (all host-side; none of it changes simulated numbers):
//
//   workers    claim admitted sessions in admission order; each builds the
//              system, runs the profiled software run, files the DPM job,
//              blocks until its grant, then runs the warped re-run;
//   shards     N scheduler threads own disjoint slices of the DPM queue.
//              Ownership is consistent-hashed by *kernel content hash*
//              (program words + the DPM-relevant config knobs), so every
//              repeat of a kernel lands on the same shard and is served
//              after its first occurrence — the sharding invariant that
//              makes repeats guaranteed cache hits. Each shard pops its own
//              queue in ascending virtual admission order;
//   sequencer  one thread owns the *virtual* DPM accounting: it walks
//              sessions in seq order through a DpmVirtualClock (round
//              robin), assigning each session's dpm_wait_seconds with the
//              identical arithmetic of run_multiprocessor;
//   deadliner  one thread cancels queued-but-unstarted sessions whose
//              deadline_ms elapsed, resolving them with a kTimeout outcome.
//
// Determinism contract: the virtual DPM stays a single-server queue served
// in seq order, whatever the shard/worker counts — shards parallelize the
// *host* CAD work only. Result tables are therefore bit-identical across
// shard counts, worker counts, repeats, cache states and the serial
// reference engine (run_serial), which tests/warpd_test.cpp gates.
//
// Overload semantics (all host-side, none change accepted results):
//
//   admission   AdmissionController bounds sessions/queued/bytes in flight.
//               A request over any cap is shed *before* it takes a seq slot
//               or locks the seq mode: the outcome is kBusy with a
//               deterministic retry_after_ms hint that grows with queue
//               depth. A shed request has no side effects beyond counters —
//               the accepted subsequence's table is bit-identical to
//               run_serial over that same subsequence.
//   deadlines   a request's deadline_ms bounds *queueing*, not service:
//               once a worker starts a session it always finishes. Expired
//               queued sessions resolve kTimeout, flow through the
//               sequencer without charging the virtual clock (exactly like
//               a failed build), and never run simulated work.
//   coalescing  identical in-flight requests (same workload + overrides)
//               run the pipeline once: later arrivals subscribe as
//               followers of the in-flight leader and copy its entry when
//               it lands. The sequencer still charges the virtual clock
//               once per session in seq order, so the table is the same as
//               if each follower had re-run the pipeline — coalescing is
//               invisible in results, visible only in pipeline_runs/
//               coalesced stats and host latency.
//   drain       begin_drain() makes admission shed everything (kBusy with
//               the max retry hint) while in-flight sessions finish;
//               drain() then waits them out. The socket layer builds
//               SIGTERM/"drain" handling on top (server.hpp).
//
// Virtual admission order ("seq"): a request may carry an explicit seq —
// its slot in the shared DPM's virtual queue — so that multiple client
// connections splitting one logical stream yield the same table no matter
// how their lines interleave on the host. A stream either tags every
// request (explicit mode: seqs must be unique and dense from 0; a gap
// stalls *reporting* of later sessions until it arrives, and stop()
// collapses any gap that never does) or none (implicit mode: seq =
// admission order). The mode is locked by the first admitted request.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/fault_injector.hpp"
#include "common/hash.hpp"
#include "experiments/harness.hpp"
#include "partition/cache.hpp"
#include "serve/protocol.hpp"
#include "warp/warp_system.hpp"

namespace warp::serve {

/// Consistent-hash ring mapping kernel content hashes to shard owners.
/// Each shard contributes `points_per_shard` ring points; a key is owned by
/// the first point at or after it (wrapping). Adding a shard therefore only
/// moves the keys adjacent to its new points — and for a fixed member set
/// the mapping is a pure function of the key, identical on every host.
///
/// The membership ctor takes explicit member ids (the cluster layer passes
/// live warpd node ids): each member's points are hashed per (id, point),
/// so removing a member only reassigns the ranges its own points covered —
/// every other key keeps its owner (the smooth-resharding property,
/// tests/shard_ring_test.cpp). ShardRing(n, p) is exactly
/// ShardRing({0..n-1}, p), so in-engine shard routing is the same function.
class ShardRing {
 public:
  ShardRing(unsigned shards, unsigned points_per_shard = 16);
  ShardRing(const std::vector<unsigned>& members, unsigned points_per_shard = 16);
  /// The owning member id (NOT an index into members). Returns the lowest
  /// member id on an empty ring so callers need no special case.
  unsigned owner(const common::Digest& key) const;
  unsigned shards() const { return shards_; }

 private:
  unsigned shards_;
  std::vector<std::pair<std::uint64_t, unsigned>> points_;  // sorted by .first
};

/// Occupancy caps for the admission controller. A cap of 0 means unlimited;
/// with every cap 0 (the default) admission is a no-op and warpd behaves
/// exactly as before this layer existed.
struct AdmissionOptions {
  /// Admitted-but-unfinalized sessions (queued + running).
  std::size_t max_sessions = 0;
  /// Admitted-but-unstarted sessions (the claim queue).
  std::size_t max_queued = 0;
  /// Accounting bytes in flight: session_bytes per admitted session.
  std::uint64_t max_bytes = 0;
  /// Accounting charge per session — an envelope for one built WarpSystem
  /// (program + memories + partition artifacts), not a measurement.
  std::uint64_t session_bytes = 256 * 1024;
  /// Busy retry hint: min(busy_retry_cap_ms, busy_retry_ms * (queued + 1)).
  /// Deterministic in the occupancy at shed time, so identical request
  /// schedules get identical hints.
  std::uint64_t busy_retry_ms = 25;
  std::uint64_t busy_retry_cap_ms = 2000;

  bool enabled() const { return max_sessions != 0 || max_queued != 0 || max_bytes != 0; }
};

/// Bounded-occupancy bookkeeping for warpd admission. Not thread-safe on
/// its own: every call happens under the owning Warpd's mutex.
class AdmissionController {
 public:
  explicit AdmissionController(AdmissionOptions options) : options_(options) {}

  /// Admit one session, or return the deterministic busy retry hint (ms) if
  /// any cap would be exceeded. On admission the session is counted as
  /// queued until started() and in flight until finished().
  std::optional<std::uint64_t> try_admit();
  /// The hint a shed request gets right now (same formula try_admit uses).
  std::uint64_t retry_hint_ms() const;
  /// The hint handed out while draining: the cap, i.e. "come back after the
  /// restart, not in a few ms".
  std::uint64_t drain_retry_ms() const { return options_.busy_retry_cap_ms; }

  void started();   // a queued session was claimed (or cancelled)
  void finished();  // an admitted session finalized

  const AdmissionOptions& options() const { return options_; }
  std::size_t sessions() const { return sessions_; }
  std::size_t queued() const { return queued_; }
  std::uint64_t bytes() const { return bytes_; }
  std::uint64_t peak_sessions() const { return peak_sessions_; }
  std::uint64_t peak_queued() const { return peak_queued_; }
  std::uint64_t peak_bytes() const { return peak_bytes_; }

 private:
  AdmissionOptions options_;
  std::size_t sessions_ = 0;  // admitted, not yet finalized
  std::size_t queued_ = 0;    // admitted, not yet started
  std::uint64_t bytes_ = 0;
  std::uint64_t peak_sessions_ = 0;
  std::uint64_t peak_queued_ = 0;
  std::uint64_t peak_bytes_ = 0;
};

struct WarpdOptions {
  /// DPM scheduler (shard) threads; clamped to >= 1.
  unsigned shards = 1;
  /// Session worker threads; 0 = std::thread::hardware_concurrency().
  unsigned workers = 0;
  unsigned ring_points_per_shard = 16;
  /// Shared artifact cache consulted by every DPM job (not owned; may be
  /// null). Typically has a DiskArtifactStore attached — that is what makes
  /// repeat kernels disk hits across server restarts.
  partition::ArtifactCache* cache = nullptr;
  /// Shared deterministic fault injector for the pipeline/store sites (not
  /// owned; may be null). Socket-layer sites live in server.hpp; the
  /// engine-level "serve.admit" site fires here, and only when admission
  /// caps are enabled (an injected admission fault sheds the request
  /// exactly like a full queue).
  common::FaultInjector* fault = nullptr;
  /// Occupancy caps; disabled (unlimited) by default.
  AdmissionOptions admission;
  /// Merge identical in-flight requests onto one pipeline run. Results are
  /// bit-identical either way (gated by tests); off only for A/B benches.
  bool coalesce = true;
  /// This engine's cluster node id, stamped on every outcome (and thus on
  /// every ok reply's node= field). 0 for a standalone server.
  std::uint32_t node_id = 0;
  /// Per-session template (cpu config, system config, ...). Its `cache`
  /// member is ignored — the engine passes `cache` above per DPM call.
  experiments::HarnessOptions base;
};

/// What one session resolved to, distinguished by `status`:
///   kOk       the entry is the session's result table row (software
///             fallback included — a failed CAD flow is a completed session
///             with warped=false, never an error);
///   kErr      rejected at admission (unknown workload, bad override, seq
///             conflict); `error` says why, the entry is meaningless;
///   kBusy     shed by the admission controller (over caps, draining, or an
///             injected serve.admit fault); retry_after_ms is the hint, the
///             entry is meaningless and no session state was created;
///   kTimeout  admitted but cancelled before a worker started it; `error`
///             carries the deadline message, no simulated work ran.
/// `error` stays nonempty exactly when status != kOk, so status-unaware
/// callers keep working.
struct SessionOutcome {
  std::uint64_t id = 0;
  std::uint64_t seq = 0;
  protocol::ReplyStatus status = protocol::ReplyStatus::kOk;
  std::string error;
  std::uint64_t retry_after_ms = 0;  // kBusy only
  warpsys::MultiWarpEntry entry;
  unsigned shard = 0;       // owner shard of the session's kernel
  std::uint32_t node = 0;   // WarpdOptions::node_id of the admitting engine
  double latency_ms = 0.0;  // host admission -> completion
};

struct ShardStats {
  std::uint64_t jobs = 0;    // DPM services executed by this shard
  double busy_ms = 0.0;      // host wall clock spent in them
};

struct WarpdStats {
  std::uint64_t admitted = 0;
  std::uint64_t completed = 0;       // finalized sessions, timeouts included
  std::uint64_t rejected = 0;        // kErr outcomes
  std::uint64_t busy_rejected = 0;   // kBusy sheds (caps, drain, serve.admit)
  std::uint64_t timeouts = 0;        // kTimeout cancellations
  std::uint64_t coalesced = 0;       // sessions served as followers
  std::uint64_t pipeline_runs = 0;   // sessions that ran their own pipeline
  std::uint64_t unique_kernels = 0;  // distinct kernel content hashes seen
  std::uint64_t max_queue_depth = 0; // peak admitted-but-unstarted occupancy
  std::uint64_t peak_sessions = 0;   // peak admitted-but-unfinalized
  std::uint64_t peak_bytes = 0;      // peak accounting bytes in flight
  bool draining = false;
  std::vector<ShardStats> shards;
  std::vector<double> latencies_ms;  // served (kOk) sessions, in seq order
};

class Warpd {
 public:
  using Callback = std::function<void(const SessionOutcome&)>;

  explicit Warpd(WarpdOptions options);
  ~Warpd();
  Warpd(const Warpd&) = delete;
  Warpd& operator=(const Warpd&) = delete;

  /// Admit one session. The callback fires exactly once — from an engine
  /// thread once the session completes, or synchronously (with a kErr or
  /// kBusy outcome, before submit returns) if the request is rejected or
  /// shed. Callbacks must not re-enter this Warpd beyond submit().
  void submit(const protocol::Request& request, Callback done);

  /// Stop admitting (everything new is shed kBusy with drain_retry_ms)
  /// while in-flight sessions run to completion. Irreversible.
  void begin_drain();
  bool draining() const;

  /// Block until every admitted session has completed. With a gapped
  /// explicit-seq stream this waits for the gap; use stop() to force.
  void drain();

  /// Stop admitting, finish every admitted session (collapsing any seq
  /// gaps, in ascending seq order), deliver their callbacks and join all
  /// engine threads. Idempotent; the destructor calls it.
  void stop();

  WarpdStats stats() const;
  const WarpdOptions& options() const { return options_; }
  unsigned workers() const { return n_workers_; }

 private:
  struct Session {
    protocol::Request request;
    Callback done;
    std::chrono::steady_clock::time_point admitted;
    /// Host time by which a worker must start this session (claim it, or
    /// coalesce it onto a leader) — else the deadliner cancels it.
    std::optional<std::chrono::steady_clock::time_point> deadline;
    std::uint64_t seq = 0;
    std::size_t index = 0;  // admission index
    std::unique_ptr<warpsys::WarpSystem> system;
    warpsys::MultiWarpEntry entry;
    unsigned shard = 0;
    protocol::ReplyStatus status = protocol::ReplyStatus::kOk;
    std::string message;       // kTimeout detail
    std::string coalesce_key;  // nonempty while this session leads its key
    std::vector<std::size_t> followers;  // admission indices coalesced here
    bool claimed = false;      // a worker took it (or the deadliner resolved it)
    bool has_job = false;      // profile succeeded; a DPM job was filed
    bool partitioned = false;
    bool dpm_done = false;     // shard served the job (or there was none)
    bool runs_done = false;    // warped/fallback run finished
    bool wait_done = false;    // sequencer assigned dpm_wait_seconds
    bool finalized = false;
  };
  using Delivery = std::pair<Callback, SessionOutcome>;

  void worker_main();
  void shard_main(unsigned shard);
  void sequencer_main();
  void deadline_main();
  /// Resolve an admitted-but-unstarted session as kTimeout. The session
  /// flows through the sequencer (no clock charge) like a failed build.
  void cancel_locked(Session& session);
  /// Copy a landed leader's results onto its followers and finalize them.
  void resolve_followers_locked(Session& leader, std::vector<Delivery>& out);
  std::optional<Delivery> try_finalize_locked(Session& session);
  static void deliver(std::optional<Delivery> delivery);

  WarpdOptions options_;
  unsigned n_shards_ = 1;
  unsigned n_workers_ = 1;
  ShardRing ring_;

  mutable std::mutex mutex_;
  std::condition_variable worker_cv_;   // submit/stop -> workers
  std::condition_variable grant_cv_;    // shards -> blocked workers
  std::condition_variable seq_cv_;      // shards/workers -> sequencer
  std::condition_variable done_cv_;     // finalize -> drain()
  std::condition_variable deadline_cv_; // submit/stop -> deadliner
  std::vector<std::unique_ptr<std::condition_variable>> shard_cvs_;

  std::deque<std::unique_ptr<Session>> sessions_;  // by admission index
  std::size_t next_claim_ = 0;
  // Per-shard job queues, ordered by (seq, admission index).
  std::vector<std::set<std::pair<std::uint64_t, std::size_t>>> shard_queues_;
  std::map<std::uint64_t, Session*> pending_waits_;  // seq -> session
  std::uint64_t next_seq_ = 0;
  std::set<std::uint64_t> used_seqs_;  // explicit mode duplicate detection
  enum class SeqMode { kUnset, kImplicit, kExplicit };
  SeqMode seq_mode_ = SeqMode::kUnset;
  warpsys::DpmVirtualClock clock_;  // kRoundRobin: serves in seq order
  std::set<std::pair<std::uint64_t, std::uint64_t>> kernels_seen_;
  AdmissionController admission_;
  // In-flight coalescing leaders: request content key -> admission index.
  std::map<std::string, std::size_t> inflight_leaders_;
  bool draining_ = false;
  bool stopping_ = false;
  bool stopped_ = false;
  unsigned workers_exited_ = 0;
  WarpdStats stats_;
  std::map<std::uint64_t, double> latencies_by_seq_;
  std::vector<std::thread> threads_;
};

/// Serial reference engine: the same sessions, built/run one at a time on
/// the calling thread in the given order, waits assigned in seq order with
/// the same DpmVirtualClock arithmetic. Outcomes are returned in request
/// order. The concurrent engine is gated bit-identical against this.
/// Serial execution is uncontended — nothing queues, so admission caps and
/// deadlines never fire here; the concurrent engine's *accepted*
/// subsequence is what must match run_serial over that subsequence.
std::vector<SessionOutcome> run_serial(const std::vector<protocol::Request>& requests,
                                       const WarpdOptions& options);

/// The kernel content hash the engine routes `request` by: the assembled
/// program words plus the DPM-relevant config knobs (max_candidates,
/// csd_max_terms — packed_width is host-only and excluded). This is the
/// exact digest Warpd computes when it builds the session, exposed so the
/// cluster coordinator can route a request to its ShardRing owner before
/// any node builds it. Building the WarpSystem is the only way to get the
/// assembled words, so callers on a hot path should cache per
/// (workload, max_candidates, csd_max_terms). Errors on unknown workloads.
common::Result<common::Digest> kernel_digest_for(const protocol::Request& request,
                                                 const experiments::HarnessOptions& base);

}  // namespace warp::serve
