// warpd: a multi-session warp serving engine on the shared DPM.
//
// One admitted request = one warp session: a fresh WarpSystem is built for
// the named workload (with the request's config overrides), pushed through
// the profile -> DPM -> warped phases of warp_system.hpp, and reported as a
// MultiWarpEntry — exactly the Figure-4 methodology, but request-driven and
// long-running instead of batch.
//
// Host architecture (all host-side; none of it changes simulated numbers):
//
//   workers    claim admitted sessions in admission order; each builds the
//              system, runs the profiled software run, files the DPM job,
//              blocks until its grant, then runs the warped re-run;
//   shards     N scheduler threads own disjoint slices of the DPM queue.
//              Ownership is consistent-hashed by *kernel content hash*
//              (program words + the DPM-relevant config knobs), so every
//              repeat of a kernel lands on the same shard and is served
//              after its first occurrence — the sharding invariant that
//              makes repeats guaranteed cache hits. Each shard pops its own
//              queue in ascending virtual admission order;
//   sequencer  one thread owns the *virtual* DPM accounting: it walks
//              sessions in seq order through a DpmVirtualClock (round
//              robin), assigning each session's dpm_wait_seconds with the
//              identical arithmetic of run_multiprocessor.
//
// Determinism contract: the virtual DPM stays a single-server queue served
// in seq order, whatever the shard/worker counts — shards parallelize the
// *host* CAD work only. Result tables are therefore bit-identical across
// shard counts, worker counts, repeats, cache states and the serial
// reference engine (run_serial), which tests/warpd_test.cpp gates.
//
// Virtual admission order ("seq"): a request may carry an explicit seq —
// its slot in the shared DPM's virtual queue — so that multiple client
// connections splitting one logical stream yield the same table no matter
// how their lines interleave on the host. A stream either tags every
// request (explicit mode: seqs must be unique and dense from 0; a gap
// stalls *reporting* of later sessions until it arrives, and stop()
// collapses any gap that never does) or none (implicit mode: seq =
// admission order). The mode is locked by the first admitted request.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/fault_injector.hpp"
#include "common/hash.hpp"
#include "experiments/harness.hpp"
#include "partition/cache.hpp"
#include "serve/protocol.hpp"
#include "warp/warp_system.hpp"

namespace warp::serve {

/// Consistent-hash ring mapping kernel content hashes to shard owners.
/// Each shard contributes `points_per_shard` ring points; a key is owned by
/// the first point at or after it (wrapping). Adding a shard therefore only
/// moves the keys adjacent to its new points — and for a fixed shard count
/// the mapping is a pure function of the key, identical on every host.
class ShardRing {
 public:
  ShardRing(unsigned shards, unsigned points_per_shard = 16);
  unsigned owner(const common::Digest& key) const;
  unsigned shards() const { return shards_; }

 private:
  unsigned shards_;
  std::vector<std::pair<std::uint64_t, unsigned>> points_;  // sorted by .first
};

struct WarpdOptions {
  /// DPM scheduler (shard) threads; clamped to >= 1.
  unsigned shards = 1;
  /// Session worker threads; 0 = std::thread::hardware_concurrency().
  unsigned workers = 0;
  unsigned ring_points_per_shard = 16;
  /// Shared artifact cache consulted by every DPM job (not owned; may be
  /// null). Typically has a DiskArtifactStore attached — that is what makes
  /// repeat kernels disk hits across server restarts.
  partition::ArtifactCache* cache = nullptr;
  /// Shared deterministic fault injector for the pipeline/store sites (not
  /// owned; may be null). Socket-layer sites live in server.hpp.
  common::FaultInjector* fault = nullptr;
  /// Per-session template (cpu config, system config, ...). Its `cache`
  /// member is ignored — the engine passes `cache` above per DPM call.
  experiments::HarnessOptions base;
};

/// What one session resolved to. `error` nonempty means the request was
/// rejected at admission (unknown workload, bad override, seq conflict) and
/// the entry is meaningless; otherwise the entry is the session's result
/// table row (software fallback included — a failed CAD flow is a completed
/// session with warped=false, never an error).
struct SessionOutcome {
  std::uint64_t id = 0;
  std::uint64_t seq = 0;
  std::string error;
  warpsys::MultiWarpEntry entry;
  unsigned shard = 0;       // owner shard of the session's kernel
  double latency_ms = 0.0;  // host admission -> completion
};

struct ShardStats {
  std::uint64_t jobs = 0;    // DPM services executed by this shard
  double busy_ms = 0.0;      // host wall clock spent in them
};

struct WarpdStats {
  std::uint64_t admitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t rejected = 0;
  std::uint64_t unique_kernels = 0;  // distinct kernel content hashes seen
  std::vector<ShardStats> shards;
  std::vector<double> latencies_ms;  // completed sessions, in seq order
};

class Warpd {
 public:
  using Callback = std::function<void(const SessionOutcome&)>;

  explicit Warpd(WarpdOptions options);
  ~Warpd();
  Warpd(const Warpd&) = delete;
  Warpd& operator=(const Warpd&) = delete;

  /// Admit one session. The callback fires exactly once — from an engine
  /// thread once the session completes, or synchronously (with `error` set,
  /// before submit returns) if the request is rejected. Callbacks must not
  /// re-enter this Warpd beyond submit().
  void submit(const protocol::Request& request, Callback done);

  /// Block until every admitted session has completed. With a gapped
  /// explicit-seq stream this waits for the gap; use stop() to force.
  void drain();

  /// Stop admitting, finish every admitted session (collapsing any seq
  /// gaps, in ascending seq order), deliver their callbacks and join all
  /// engine threads. Idempotent; the destructor calls it.
  void stop();

  WarpdStats stats() const;
  const WarpdOptions& options() const { return options_; }
  unsigned workers() const { return n_workers_; }

 private:
  struct Session {
    protocol::Request request;
    Callback done;
    std::chrono::steady_clock::time_point admitted;
    std::uint64_t seq = 0;
    std::size_t index = 0;  // admission index
    std::unique_ptr<warpsys::WarpSystem> system;
    warpsys::MultiWarpEntry entry;
    unsigned shard = 0;
    bool has_job = false;      // profile succeeded; a DPM job was filed
    bool partitioned = false;
    bool dpm_done = false;     // shard served the job (or there was none)
    bool runs_done = false;    // warped/fallback run finished
    bool wait_done = false;    // sequencer assigned dpm_wait_seconds
    bool finalized = false;
  };
  using Delivery = std::pair<Callback, SessionOutcome>;

  void worker_main();
  void shard_main(unsigned shard);
  void sequencer_main();
  std::string validate_locked(const protocol::Request& request);
  std::optional<Delivery> try_finalize_locked(Session& session);
  static void deliver(std::optional<Delivery> delivery);

  WarpdOptions options_;
  unsigned n_shards_ = 1;
  unsigned n_workers_ = 1;
  ShardRing ring_;

  mutable std::mutex mutex_;
  std::condition_variable worker_cv_;   // submit/stop -> workers
  std::condition_variable grant_cv_;    // shards -> blocked workers
  std::condition_variable seq_cv_;      // shards/workers -> sequencer
  std::condition_variable done_cv_;     // finalize -> drain()
  std::vector<std::unique_ptr<std::condition_variable>> shard_cvs_;

  std::deque<std::unique_ptr<Session>> sessions_;  // by admission index
  std::size_t next_claim_ = 0;
  // Per-shard job queues, ordered by (seq, admission index).
  std::vector<std::set<std::pair<std::uint64_t, std::size_t>>> shard_queues_;
  std::map<std::uint64_t, Session*> pending_waits_;  // seq -> session
  std::uint64_t next_seq_ = 0;
  std::set<std::uint64_t> used_seqs_;  // explicit mode duplicate detection
  enum class SeqMode { kUnset, kImplicit, kExplicit };
  SeqMode seq_mode_ = SeqMode::kUnset;
  warpsys::DpmVirtualClock clock_;  // kRoundRobin: serves in seq order
  std::set<std::pair<std::uint64_t, std::uint64_t>> kernels_seen_;
  bool stopping_ = false;
  bool stopped_ = false;
  unsigned workers_exited_ = 0;
  WarpdStats stats_;
  std::map<std::uint64_t, double> latencies_by_seq_;
  std::vector<std::thread> threads_;
};

/// Serial reference engine: the same sessions, built/run one at a time on
/// the calling thread in the given order, waits assigned in seq order with
/// the same DpmVirtualClock arithmetic. Outcomes are returned in request
/// order. The concurrent engine is gated bit-identical against this.
std::vector<SessionOutcome> run_serial(const std::vector<protocol::Request>& requests,
                                       const WarpdOptions& options);

}  // namespace warp::serve
