#include "serve/cluster.hpp"

#include <algorithm>
#include <chrono>

#include "common/strings.hpp"

namespace warp::serve {

namespace {

// Replication envelopes ride the line protocol hex-encoded; the cluster
// server's line budget must fit the largest artifact envelope (~2x bytes as
// hex) plus the op framing.
constexpr std::size_t kClusterMaxLineBytes = 8u << 20;

// The digest-relevant part of a request: workload plus the two overrides
// that enter the kernel content hash (packed_width is host-only and
// excluded by kernel_digest_for).
std::string digest_key_of(const protocol::Request& request) {
  const protocol::RequestOverrides& o = request.overrides;
  std::string key = request.workload;
  key += '|';
  key += o.max_candidates ? std::to_string(*o.max_candidates) : std::string("-");
  key += '|';
  key += o.csd_max_terms ? std::to_string(*o.csd_max_terms) : std::string("-");
  return key;
}

SessionOutcome outcome_of(const protocol::Reply& reply) {
  SessionOutcome out;
  out.id = reply.id;
  out.status = reply.status;
  out.node = reply.node;
  out.retry_after_ms = reply.retry_after_ms;
  if (reply.status == protocol::ReplyStatus::kOk) {
    out.entry = protocol::entry_of(reply);
  } else {
    out.error = reply.detail.empty() ? std::string("forwarded failure") : reply.detail;
    if (reply.status == protocol::ReplyStatus::kBusy) out.error = "busy";
  }
  return out;
}

}  // namespace

// --- RemotePeer: partition::ReplicaPeer over the replication ops -----------

class ClusterNode::RemotePeer : public partition::ReplicaPeer {
 public:
  RemotePeer(ClusterNode* node, Peer* peer) : node_(node), peer_(peer) {}

  std::string name() const override { return "node" + std::to_string(peer_->id); }

  bool alive() override { return node_->peer_live(*peer_); }

  bool push(const std::string& name, const std::vector<std::uint8_t>& envelope) override {
    const std::string hex = protocol::hex_encode(std::string_view(
        reinterpret_cast<const char*>(envelope.data()), envelope.size()));
    auto reply = node_->rpc(*peer_, "sput name=" + name + " env=" + hex,
                            node_->options_.rpc_timeout_ms, node_->options_.io_retries);
    return reply && common::starts_with(reply.value(), "sok");
  }

  std::optional<std::vector<std::uint8_t>> fetch(const std::string& name) override {
    auto reply = node_->rpc(*peer_, "sget name=" + name, node_->options_.rpc_timeout_ms,
                            node_->options_.io_retries);
    if (!reply || !common::starts_with(reply.value(), "sok")) return std::nullopt;
    const std::string& line = reply.value();
    const std::size_t pos = line.find(" env=");
    if (pos == std::string::npos) return std::nullopt;
    auto bytes = protocol::hex_decode(std::string_view(line).substr(pos + 5));
    if (!bytes) return std::nullopt;
    const std::string& raw = bytes.value();
    return std::vector<std::uint8_t>(raw.begin(), raw.end());
  }

  std::optional<std::vector<std::string>> list() override {
    auto reply = node_->rpc(*peer_, "slist", node_->options_.rpc_timeout_ms,
                            node_->options_.io_retries);
    if (!reply || !common::starts_with(reply.value(), "sok")) return std::nullopt;
    const std::string& line = reply.value();
    const std::size_t pos = line.find(" names=");
    if (pos == std::string::npos) return std::nullopt;
    std::vector<std::string> names;
    for (const auto name : common::split(std::string_view(line).substr(pos + 7), ",")) {
      if (!name.empty()) names.emplace_back(name);
    }
    return names;
  }

 private:
  ClusterNode* node_;
  Peer* peer_;
};

// --- ClusterNode ------------------------------------------------------------

ClusterNode::ClusterNode(ClusterOptions options)
    : options_(std::move(options)),
      hb_rng_(options_.heartbeat_seed ^ (0x9E3779B97F4A7C15ull * (options_.node_id + 1))),
      backoff_rng_(options_.heartbeat_seed + options_.node_id) {
  for (unsigned id = 0; id < options_.members.size(); ++id) {
    if (id == options_.node_id) continue;
    auto peer = std::make_unique<Peer>();
    peer->id = id;
    peer->spec = options_.members[id];
    peers_.push_back(std::move(peer));
  }
}

ClusterNode::~ClusterNode() { stop(); }

common::Status ClusterNode::start() {
  if (options_.node_id >= options_.members.size()) {
    return common::Status::error("node_id outside members");
  }
  if (options_.store != nullptr) {
    for (const auto& peer : peers_) {
      replica_peers_.push_back(std::make_unique<RemotePeer>(this, peer.get()));
    }
    std::vector<partition::ReplicaPeer*> replica_ptrs;
    for (const auto& rp : replica_peers_) replica_ptrs.push_back(rp.get());
    replicated_ = std::make_unique<partition::ReplicatedStore>(options_.store,
                                                               std::move(replica_ptrs));
    if (options_.cache != nullptr) options_.cache->attach_store(replicated_.get());
  }

  SocketServerOptions server_options = options_.server;
  server_options.path = options_.members[options_.node_id];
  server_options.engine.node_id = options_.node_id;
  server_options.engine.cache = options_.cache;
  server_options.max_line_bytes = std::max(server_options.max_line_bytes,
                                           kClusterMaxLineBytes);
  server_options.route = [this](const protocol::Request& request, Warpd::Callback done) {
    route(request, std::move(done));
  };
  server_options.control = [this](std::string_view line) { return control(line); };
  server_options.extra_stats = [this] { return extra_stats(); };
  server_ = std::make_unique<SocketServer>(std::move(server_options));
  if (const auto status = server_->start(); !status) {
    server_.reset();
    return status;
  }
  started_ = true;
  heartbeat_thread_ = std::thread([this] { heartbeat_main(); });
  return common::Status::ok();
}

void ClusterNode::stop() {
  if (!started_) return;
  closing_.store(true);
  {
    std::lock_guard<std::mutex> lock(hb_mutex_);
    hb_cv_.notify_all();
  }
  if (heartbeat_thread_.joinable()) heartbeat_thread_.join();
  if (server_) server_->stop();
  // The cache outlives this node; point it back at the plain local store so
  // later lookups never touch the dead replication machinery.
  if (options_.cache != nullptr && replicated_ != nullptr) {
    options_.cache->attach_store(options_.store);
  }
  started_ = false;
}

void ClusterNode::drain() {
  if (server_) server_->drain();
}

ClusterNodeStats ClusterNode::stats() const {
  ClusterNodeStats stats;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stats = stats_;
  }
  stats.peers_total = peers_.size();
  stats.peers_up = 0;
  for (const auto& peer : peers_) {
    if (peer_live(*peer)) ++stats.peers_up;
  }
  return stats;
}

unsigned ClusterNode::owner_of(const common::Digest& digest) const {
  std::vector<unsigned> live{options_.node_id};
  for (const auto& peer : peers_) {
    if (peer_live(*peer)) live.push_back(peer->id);
  }
  std::sort(live.begin(), live.end());
  const ShardRing ring(live, std::max(1u, options_.server.engine.ring_points_per_shard));
  return ring.owner(digest);
}

std::optional<common::Digest> ClusterNode::digest_for(const protocol::Request& request) {
  const std::string key = digest_key_of(request);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = digests_.find(key);
    if (it != digests_.end()) return it->second;
  }
  auto digest = kernel_digest_for(request, options_.server.engine.base);
  if (!digest) return std::nullopt;  // invalid request: let submit reject it
  std::lock_guard<std::mutex> lock(mutex_);
  digests_.emplace(key, digest.value());
  return digest.value();
}

void ClusterNode::route(const protocol::Request& request, Warpd::Callback done) {
  if (request.forwarded_from) {
    // Already routed by its origin: execute here unconditionally. A stale
    // ring view on the origin can misplace a session (results are identical
    // anywhere); it can never loop one.
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.forwarded_in;
    }
    server_->engine().submit(request, std::move(done));
    return;
  }
  const auto digest = digest_for(request);
  if (!digest) {
    server_->engine().submit(request, std::move(done));  // delivers the kErr
    return;
  }
  const unsigned owner = owner_of(*digest);
  if (owner == options_.node_id) {
    server_->engine().submit(request, std::move(done));
    return;
  }
  Peer* peer = nullptr;
  for (const auto& p : peers_) {
    if (p->id == owner) peer = p.get();
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.forwards;
  }
  if (peer != nullptr) {
    if (auto reply = forward(*peer, request)) {
      done(outcome_of(*reply));
      return;
    }
    // Link failure mid-forward: the peer is suspect *now*; do not wait for
    // the heartbeat to notice. One successful ping revives it.
    mark_down(*peer);
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.forward_failures;
    ++stats_.local_fallbacks;
  }
  // Software fallback, cluster edition: the session runs on the local
  // pipeline. Pure result fields are deterministic, so the client cannot
  // tell (only node= and this node's wait chain reflect the reroute).
  server_->engine().submit(request, std::move(done));
}

std::optional<protocol::Reply> ClusterNode::forward(Peer& peer,
                                                    const protocol::Request& request) {
  protocol::Request tagged = request;
  tagged.forwarded_from = options_.node_id;
  const std::string line = protocol::encode_request(tagged);

  Client client;
  bool connected = false;
  for (int attempt = 0; attempt < options_.io_retries; ++attempt) {
    if (probe("cluster.connect")) {
      backoff(attempt);
      continue;
    }
    if (client.connect(peer.spec)) {
      connected = true;
      break;
    }
    backoff(attempt);
  }
  if (!connected) return std::nullopt;
  simulate_slow(peer);
  // At-most-once from here: once the request line may have reached the
  // owner, a retransmit could admit the session twice and double-charge the
  // owner's virtual clock. Any failure below is a link failure — the caller
  // recomputes locally and the (possibly completed) remote session's reply
  // dies with this connection.
  if (probe("cluster.write")) return std::nullopt;
  if (!client.send_line(line)) return std::nullopt;
  if (probe("cluster.read")) return std::nullopt;
  auto reply_line = client.read_line_for(options_.forward_timeout_ms);
  if (!reply_line) return std::nullopt;
  auto reply = protocol::parse_reply(reply_line.value());
  if (!reply) return std::nullopt;
  return reply.value();
}

common::Result<std::string> ClusterNode::rpc(Peer& peer, const std::string& line,
                                             std::uint64_t timeout_ms, int attempts) {
  using R = common::Result<std::string>;
  if (closing_.load()) return R::error("closing");
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (probe("cluster.connect")) {
      backoff(attempt);
      continue;
    }
    Client client;
    if (!client.connect(peer.spec)) {
      backoff(attempt);
      continue;
    }
    simulate_slow(peer);
    if (probe("cluster.write") || !client.send_line(line)) {
      backoff(attempt);
      continue;
    }
    if (probe("cluster.read")) {
      backoff(attempt);
      continue;
    }
    auto reply = client.read_line_for(timeout_ms);
    if (reply) return reply.value();
    backoff(attempt);
  }
  return R::error("peer unreachable: " + peer.spec);
}

void ClusterNode::mark_down(Peer& peer) {
  peer.missed.store(options_.heartbeat_misses);
  peer.alive.store(false);
}

void ClusterNode::simulate_slow(const Peer& peer) {
  const std::uint64_t delay = peer.slow_ms.load();
  if (delay != 0) std::this_thread::sleep_for(std::chrono::milliseconds(delay));
}

bool ClusterNode::probe(const char* site) {
  return options_.fault != nullptr &&
         options_.fault->probe(site, common::FaultKind::kIoError);
}

void ClusterNode::backoff(int attempt) {
  const std::uint64_t cap = std::max<std::uint64_t>(1, options_.retry_backoff_cap_us);
  std::uint64_t base = static_cast<std::uint64_t>(std::max(1u, options_.retry_backoff_us))
                       << std::min(attempt, 20);
  base = std::min(base, cap);
  std::uint64_t jitter;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    jitter = backoff_rng_.next_u64() % base;
  }
  std::this_thread::sleep_for(std::chrono::microseconds(base + jitter));
}

void ClusterNode::heartbeat_main() {
  while (!closing_.load()) {
    std::uint64_t sleep_ms;
    {
      std::lock_guard<std::mutex> lock(hb_mutex_);
      const std::uint64_t jitter_bound = options_.heartbeat_ms / 4 + 1;
      sleep_ms = options_.heartbeat_ms + hb_rng_.next_u64() % jitter_bound;
    }
    {
      std::unique_lock<std::mutex> lock(hb_mutex_);
      hb_cv_.wait_for(lock, std::chrono::milliseconds(sleep_ms),
                      [this] { return closing_.load(); });
    }
    if (closing_.load()) break;
    for (const auto& peer : peers_) {
      if (peer->admin_down.load()) {
        // Simulated partition: no probe traffic crosses it; the peer stays
        // down until peer_up lifts the partition.
        peer->alive.store(false);
        continue;
      }
      // Two attempts per ping: a transient-schedule injector (max_consecutive
      // 2) can eat one attempt per site, and a single-attempt ping would turn
      // that into spurious peer flapping; a genuinely dead peer still fails
      // both attempts immediately.
      const auto reply = rpc(*peer, "ping", std::max<std::uint64_t>(
                                                1, options_.heartbeat_ms * 2), 2);
      if (reply && reply.value() == "pong") {
        peer->missed.store(0);
        peer->alive.store(true);
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.heartbeats;
      } else {
        const unsigned missed = peer->missed.load() + 1;
        peer->missed.store(missed);
        if (missed >= options_.heartbeat_misses) peer->alive.store(false);
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.heartbeat_failures;
      }
    }
  }
}

std::optional<std::string> ClusterNode::control(std::string_view line) {
  const auto tokens = common::split(line, " \t");
  if (tokens.empty()) return std::nullopt;
  const std::string_view verb = tokens[0];

  auto token_value = [&](std::string_view key) -> std::optional<std::string_view> {
    const std::string prefix = std::string(key) + "=";
    for (std::size_t t = 1; t < tokens.size(); ++t) {
      if (common::starts_with(tokens[t], prefix)) return tokens[t].substr(prefix.size());
    }
    return std::nullopt;
  };
  auto peer_by_id = [&]() -> Peer* {
    const auto value = token_value("id");
    long long id = -1;
    if (!value || !common::parse_int(*value, id)) return nullptr;
    for (const auto& peer : peers_) {
      if (peer->id == static_cast<unsigned>(id)) return peer.get();
    }
    return nullptr;
  };

  if (verb == "peer_down" || verb == "peer_up") {
    Peer* peer = peer_by_id();
    if (peer == nullptr) return "serr msg=unknown peer id";
    const bool down = verb == "peer_down";
    peer->admin_down.store(down);
    if (down) {
      peer->alive.store(false);
    } else {
      // Lifting the partition: optimistically live again; a real failure
      // resurfaces on the next forward or heartbeat.
      peer->missed.store(0);
      peer->alive.store(true);
    }
    return common::format("peer id=%u admin=%s", peer->id, down ? "down" : "up");
  }
  if (verb == "peer_slow") {
    Peer* peer = peer_by_id();
    if (peer == nullptr) return "serr msg=unknown peer id";
    const auto value = token_value("ms");
    long long ms = -1;
    if (!value || !common::parse_int(*value, ms) || ms < 0 || ms > 600'000) {
      return "serr msg=bad ms";
    }
    peer->slow_ms.store(static_cast<std::uint64_t>(ms));
    return common::format("peer id=%u slow_ms=%llu", peer->id,
                          static_cast<unsigned long long>(ms));
  }

  if (options_.store == nullptr) return std::nullopt;
  if (verb == "sput") {
    const auto name = token_value("name");
    const auto hex = token_value("env");
    if (!name || !hex) return "serr msg=sput wants name= and env=";
    auto bytes = protocol::hex_decode(*hex);
    if (!bytes) return "serr msg=bad hex";
    const std::string& raw = bytes.value();
    if (!options_.store->import_raw(std::string(*name),
                                    std::vector<std::uint8_t>(raw.begin(), raw.end()))) {
      return "serr msg=envelope rejected";
    }
    return "sok name=" + std::string(*name);
  }
  if (verb == "sget") {
    const auto name = token_value("name");
    if (!name) return "serr msg=sget wants name=";
    const auto envelope = options_.store->export_raw(std::string(*name));
    if (!envelope) return "serr msg=not found";
    return "sok name=" + std::string(*name) + " env=" +
           protocol::hex_encode(std::string_view(
               reinterpret_cast<const char*>(envelope->data()), envelope->size()));
  }
  if (verb == "slist") {
    std::string names;
    for (const std::string& name : options_.store->list_names()) {
      if (!names.empty()) names += ',';
      names += name;
    }
    return "sok names=" + names;
  }
  if (verb == "repair") {
    if (replicated_ == nullptr) return "serr msg=replication disabled";
    replicated_->repair();
    const partition::ReplicatedStoreStats stats = replicated_->stats();
    return common::format("sok pulled=%llu pushed=%llu rounds=%llu",
                          static_cast<unsigned long long>(stats.repairs_pulled),
                          static_cast<unsigned long long>(stats.repairs_pushed),
                          static_cast<unsigned long long>(stats.repair_rounds));
  }
  return std::nullopt;
}

std::string ClusterNode::extra_stats() {
  const ClusterNodeStats stats = this->stats();
  std::string line = common::format(
      "node=%u forwards=%llu forward_failures=%llu local_fallbacks=%llu "
      "forwarded_in=%llu heartbeats=%llu heartbeat_failures=%llu "
      "peers_up=%llu peers_total=%llu",
      options_.node_id, static_cast<unsigned long long>(stats.forwards),
      static_cast<unsigned long long>(stats.forward_failures),
      static_cast<unsigned long long>(stats.local_fallbacks),
      static_cast<unsigned long long>(stats.forwarded_in),
      static_cast<unsigned long long>(stats.heartbeats),
      static_cast<unsigned long long>(stats.heartbeat_failures),
      static_cast<unsigned long long>(stats.peers_up),
      static_cast<unsigned long long>(stats.peers_total));
  if (replicated_ != nullptr) {
    const partition::ReplicatedStoreStats r = replicated_->stats();
    line += common::format(
        " repl.pushes=%llu repl.push_failures=%llu repl.pulls=%llu "
        "repl.pull_hits=%llu repl.pull_rejects=%llu repl.repairs_pulled=%llu "
        "repl.repairs_pushed=%llu repl.repair_rounds=%llu",
        static_cast<unsigned long long>(r.pushes),
        static_cast<unsigned long long>(r.push_failures),
        static_cast<unsigned long long>(r.pulls),
        static_cast<unsigned long long>(r.pull_hits),
        static_cast<unsigned long long>(r.pull_rejects),
        static_cast<unsigned long long>(r.repairs_pulled),
        static_cast<unsigned long long>(r.repairs_pushed),
        static_cast<unsigned long long>(r.repair_rounds));
  }
  if (options_.store != nullptr) {
    const partition::DiskStoreStats d = options_.store->stats();
    line += common::format(
        " store.files=%llu store.quarantined=%llu store.put_failures=%llu",
        static_cast<unsigned long long>(d.files),
        static_cast<unsigned long long>(d.quarantined),
        static_cast<unsigned long long>(d.put_failures));
  }
  return line;
}

}  // namespace warp::serve
