// warpd wire protocol: line-delimited warp-session requests and replies.
//
// One request or reply per '\n'-terminated line of UTF-8-clean ASCII.
// Grammar (docs/serving.md has the full spec and examples):
//
//   request  = "warp" *( SP key "=" value )
//   keys       id=<u64>            required; echoed on the reply
//              workload=<name>     required; a workloads::extended_workloads() name
//              seq=<u64>           optional; position in the shared DPM's
//                                  *virtual* admission order (see warpd.hpp)
//              deadline_ms=<1..86400000>   optional; cancel the session with a
//                                  "timeout" reply if it cannot *start* within
//                                  this many host milliseconds of admission
//              packed_width=<0|1|2|4>      optional WarpSystemConfig override
//              max_candidates=<1..64>      optional DpmOptions override
//              csd_max_terms=<0..16>       optional SynthOptions override
//              fwd=<0..1023>       optional; cluster-internal: the node id
//                                  that forwarded this session to its
//                                  ShardRing owner. A request carrying fwd=
//                                  is executed locally, never re-forwarded,
//                                  so a stale ring view cannot loop a
//                                  session between nodes (cluster.hpp)
//   ping     = "ping"              answered with the raw line "pong"
//   drain    = "drain"             answered "draining"; the server stops
//                                  admitting (new sessions get "busy") and a
//                                  daemon exits 0 once in-flight work ends
//   stats    = "stats"             answered with one "stats k=v ..." line
//                                  (occupancy + overload counters; the load
//                                  harness reads coalescing/queue-depth here)
//
//   reply    = "ok" SP "id=" u64 SP "workload=" name SP "warped=" (0|1)
//              SP "sw_s=" dbl SP "warped_s=" dbl SP "speedup=" dbl
//              SP "dpm_s=" dbl SP "wait_s=" dbl SP "node=" u32
//              SP "detail=" rest-of-line
//            | "err" SP "id=" u64 SP "msg=" rest-of-line
//            | "busy" SP "id=" u64 SP "retry_ms=" u64
//            | "timeout" SP "id=" u64 SP "msg=" rest-of-line
//
// "busy" is the admission controller's overload answer: the request was NOT
// admitted (no session, no side effects beyond counters) and the client may
// retry after the deterministic retry_ms hint. "timeout" means the session
// was admitted but cancelled before it ever started (its deadline_ms
// elapsed while queued); no simulated work ran on its behalf.
// "node=" names the warpd node whose sequencer admitted the session —
// cluster clients group replies by node to replay each node's wait chain
// independently. It is always encoded on "ok" but optional on parse, so
// pre-cluster reply lines still decode (node defaults to 0).
// Doubles are rendered with %.17g so a decoded reply reproduces the
// server-side MultiWarpEntry bit for bit — the determinism gates compare
// tables straight off the wire. detail=/msg= are always the final field and
// consume the rest of the line (free text may contain spaces); every other
// value is a strict token. Parsers never throw on wire input: any malformed
// byte sequence is an error return, which the server answers with an "err"
// line (fuzz-tested in tests/warpd_proto_test.cpp).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "common/error.hpp"
#include "warp/warp_system.hpp"

namespace warp::serve::protocol {

/// Server-side cap on one request line (bytes, excluding the newline).
/// Longer lines are discarded up to the next newline and answered with an
/// error reply.
inline constexpr std::size_t kMaxLineBytes = 4096;

/// Per-session WarpSystemConfig overrides a request may carry. Ranges are
/// validated at parse time (and re-validated at admission for in-process
/// callers that construct Request directly).
struct RequestOverrides {
  std::optional<unsigned> packed_width;    // 0 (auto), 1, 2 or 4
  std::optional<unsigned> max_candidates;  // 1..64
  std::optional<unsigned> csd_max_terms;   // 0..16

  bool operator==(const RequestOverrides&) const = default;
};

/// Upper bound on deadline_ms (24 h) — large enough for any real client,
/// small enough that deadline arithmetic can never overflow host clocks.
inline constexpr std::uint64_t kMaxDeadlineMs = 86'400'000;

/// Upper bound on the fwd= node id — far beyond any plausible cluster size,
/// tight enough to reject line noise.
inline constexpr std::uint64_t kMaxNodeId = 1023;

struct Request {
  std::uint64_t id = 0;     // client correlation token, echoed verbatim
  std::string workload;     // extended_workloads() name
  std::optional<std::uint64_t> seq;  // virtual admission slot (warpd.hpp)
  /// Host milliseconds from admission within which the session must start
  /// (be claimed by a worker or coalesce onto a leader); expired queued
  /// sessions are cancelled with a "timeout" reply. 1..kMaxDeadlineMs.
  std::optional<std::uint64_t> deadline_ms;
  /// Cluster-internal: id of the node that forwarded this session here.
  /// Present => execute locally, never re-forward (loop prevention).
  std::optional<std::uint32_t> forwarded_from;
  RequestOverrides overrides;

  bool operator==(const Request&) const = default;
};

/// What a reply line says about the request. kBusy and kTimeout share the
/// "not ok" bit with kErr but mean different things: kErr rejects the
/// request itself, kBusy sheds it at admission (retry later), kTimeout
/// cancels an admitted-but-never-started session.
enum class ReplyStatus : std::uint8_t { kOk, kErr, kBusy, kTimeout };

struct Reply {
  ReplyStatus status = ReplyStatus::kErr;
  bool ok = false;  // status == kOk, kept as a field for terse call sites
  std::uint64_t id = 0;
  // "ok" payload: the session's MultiWarpEntry fields.
  std::string workload;
  bool warped = false;
  double sw_seconds = 0.0;
  double warped_seconds = 0.0;
  double speedup = 0.0;
  double dpm_seconds = 0.0;
  double dpm_wait_seconds = 0.0;
  std::uint64_t retry_after_ms = 0;  // "busy" payload
  std::uint32_t node = 0;  // warpd node whose sequencer admitted the session
  std::string detail;  // entry detail (ok) or message (err/timeout)
};

/// Parse one request line (no trailing newline). Never throws on wire
/// input; unknown verbs/keys, missing id/workload, duplicate keys and
/// out-of-range values are errors.
common::Result<Request> parse_request(std::string_view line);

std::string encode_request(const Request& request);

Reply make_ok_reply(std::uint64_t id, const warpsys::MultiWarpEntry& entry);
Reply make_error_reply(std::uint64_t id, std::string message);
Reply make_busy_reply(std::uint64_t id, std::uint64_t retry_after_ms);
Reply make_timeout_reply(std::uint64_t id, std::string message);

std::string encode_reply(const Reply& reply);

/// Parse one reply line. Same no-throw guarantee as parse_request.
common::Result<Reply> parse_reply(std::string_view line);

/// The MultiWarpEntry a decoded "ok" reply carries (name = workload). With
/// %.17g doubles this round-trips the server-side entry bit for bit, so
/// determinism tests compare wire tables with operator== directly.
warpsys::MultiWarpEntry entry_of(const Reply& reply);

/// Lowercase-hex codec for carrying binary artifact-store envelopes over
/// the line protocol (replication ops sput/sget). hex_decode errors on odd
/// length or non-hex bytes — it parses wire input, so it never throws.
std::string hex_encode(std::string_view bytes);
common::Result<std::string> hex_decode(std::string_view hex);

}  // namespace warp::serve::protocol
