#include "serve/server.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <map>

#include "common/strings.hpp"

namespace warp::serve {

namespace {

common::Status errno_status(const std::string& what) {
  return common::Status::error(what + ": " + std::strerror(errno));
}

}  // namespace

SocketServer::SocketServer(SocketServerOptions options)
    : options_(std::move(options)), backoff_rng_(options_.backoff_seed) {
  engine_ = std::make_unique<Warpd>(options_.engine);
}

SocketServer::~SocketServer() { stop(); }

bool SocketServer::probe(const char* site) {
  return options_.fault != nullptr && options_.fault->probe(site, common::FaultKind::kIoError);
}

void SocketServer::backoff(int attempt) {
  // Exponential in the attempt with a hard cap, plus seeded deterministic
  // jitter in [base, 2*base): concurrent connections retrying the same
  // persistent fault spread out instead of hammering in lockstep, and one
  // seed reproduces the exact schedule.
  const std::uint64_t cap = std::max<std::uint64_t>(1, options_.retry_backoff_cap_us);
  std::uint64_t base = static_cast<std::uint64_t>(std::max(1u, options_.retry_backoff_us))
                       << std::min(attempt, 20);
  base = std::min(base, cap);
  std::uint64_t jitter;
  {
    std::lock_guard<std::mutex> lock(backoff_mutex_);
    jitter = backoff_rng_.next_u64() % base;
  }
  std::this_thread::sleep_for(std::chrono::microseconds(base + jitter));
}

common::Status SocketServer::start() {
  auto endpoint = parse_endpoint(options_.path);
  if (!endpoint) return common::Status::error(endpoint.message());
  endpoint_ = endpoint.value();
  auto fd = listen_endpoint(endpoint_, 64);
  if (!fd) return common::Status::error(fd.message());
  listen_fd_ = fd.value();
  if (endpoint_.kind == Endpoint::Kind::kTcp) {
    auto port = bound_port(listen_fd_);
    if (!port) {
      ::close(listen_fd_);
      listen_fd_ = -1;
      return common::Status::error(port.message());
    }
    port_ = port.value();
    endpoint_.port = port_;
  }
  started_ = true;
  accept_thread_ = std::thread([this] { accept_main(); });
  return common::Status::ok();
}

void SocketServer::accept_main() {
  while (!closing_.load()) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 100);
    if (closing_.load()) break;
    if (ready <= 0 || (pfd.revents & POLLIN) == 0) continue;

    int fd = -1;
    for (int attempt = 0; attempt < options_.io_retries; ++attempt) {
      if (probe("serve.accept")) {
        {
          std::lock_guard<std::mutex> lock(mutex_);
          ++stats_.accept_faults;
        }
        backoff(attempt);
        continue;
      }
      fd = ::accept(listen_fd_, nullptr, nullptr);
      if (fd >= 0 || errno != EINTR) break;
    }
    if (fd < 0) {
      // Budget exhausted (persistent accept fault) or a real accept error:
      // the pending connection stays unserved; keep the server alive.
      backoff(options_.io_retries);
      continue;
    }
    auto conn = std::make_shared<Connection>();
    conn->fd = fd;
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.connections;
    connections_.push_back(conn);
    threads_.emplace_back([this, conn] { connection_main(conn); });
  }
}

void SocketServer::connection_main(std::shared_ptr<Connection> conn) {
  std::string inbuf;
  bool discarding = false;  // inside an oversized line, waiting for its end
  char buf[4096];
  for (;;) {
    ssize_t n = -1;
    for (int attempt = 0; attempt < options_.io_retries; ++attempt) {
      if (probe("serve.read")) {
        {
          std::lock_guard<std::mutex> lock(mutex_);
          ++stats_.read_faults;
        }
        backoff(attempt);
        continue;
      }
      n = ::recv(conn->fd, buf, sizeof(buf), 0);
      if (n >= 0 || errno != EINTR) break;
    }
    if (n < 0) {
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.read_failures;
      break;
    }
    if (n == 0) break;  // client EOF
    inbuf.append(buf, static_cast<std::size_t>(n));

    for (;;) {
      const std::size_t newline = inbuf.find('\n');
      if (newline == std::string::npos) {
        if (inbuf.size() > options_.max_line_bytes && !discarding) {
          // The line is already over budget with no end in sight: answer
          // now and drop bytes until the newline finally arrives.
          {
            std::lock_guard<std::mutex> lock(mutex_);
            ++stats_.oversized_lines;
          }
          write_line(*conn, protocol::encode_reply(
                                protocol::make_error_reply(0, "oversized request line")));
          discarding = true;
        }
        if (discarding) inbuf.clear();
        break;
      }
      std::string line = inbuf.substr(0, newline);
      inbuf.erase(0, newline + 1);
      if (discarding) {
        discarding = false;  // the tail of the oversized line; already answered
        continue;
      }
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.size() > options_.max_line_bytes) {
        {
          std::lock_guard<std::mutex> lock(mutex_);
          ++stats_.oversized_lines;
        }
        write_line(*conn, protocol::encode_reply(
                              protocol::make_error_reply(0, "oversized request line")));
        continue;
      }
      handle_line(conn, line);
    }
  }

  // Serve every in-flight session's reply before closing our side.
  {
    std::unique_lock<std::mutex> lock(conn->mutex);
    conn->idle.wait(lock, [&] { return conn->outstanding == 0; });
  }
  ::shutdown(conn->fd, SHUT_RDWR);
}

std::string SocketServer::stats_line() {
  const WarpdStats es = engine_->stats();
  const SocketServerStats ss = stats();
  const std::uint64_t disk_hits =
      options_.engine.cache != nullptr ? options_.engine.cache->total_disk_hits() : 0;
  std::string line = common::format(
      "stats admitted=%llu completed=%llu rejected=%llu busy=%llu "
      "timeouts=%llu coalesced=%llu pipeline_runs=%llu unique_kernels=%llu "
      "max_queue_depth=%llu peak_sessions=%llu peak_bytes=%llu "
      "disk_hits=%llu replies=%llu draining=%d",
      static_cast<unsigned long long>(es.admitted),
      static_cast<unsigned long long>(es.completed),
      static_cast<unsigned long long>(es.rejected),
      static_cast<unsigned long long>(es.busy_rejected),
      static_cast<unsigned long long>(es.timeouts),
      static_cast<unsigned long long>(es.coalesced),
      static_cast<unsigned long long>(es.pipeline_runs),
      static_cast<unsigned long long>(es.unique_kernels),
      static_cast<unsigned long long>(es.max_queue_depth),
      static_cast<unsigned long long>(es.peak_sessions),
      static_cast<unsigned long long>(es.peak_bytes),
      static_cast<unsigned long long>(disk_hits),
      static_cast<unsigned long long>(ss.replies), es.draining ? 1 : 0);
  // Per-site injected-fault counters from every distinct attached injector:
  // the chaos harnesses assert "the schedule actually fired" off these.
  std::map<std::string, std::uint64_t> by_site;
  std::vector<common::FaultInjector*> injectors{options_.fault};
  if (options_.engine.fault != options_.fault) injectors.push_back(options_.engine.fault);
  for (common::FaultInjector* injector : injectors) {
    if (injector == nullptr) continue;
    for (const auto& [site, count] : injector->stats().injected_by_site) {
      by_site[site] += count;
    }
  }
  for (const auto& [site, count] : by_site) {
    line += common::format(" fault.%s=%llu", site.c_str(),
                           static_cast<unsigned long long>(count));
  }
  if (options_.extra_stats) {
    const std::string extra = options_.extra_stats();
    if (!extra.empty()) line += " " + extra;
  }
  return line;
}

void SocketServer::handle_line(const std::shared_ptr<Connection>& conn,
                               std::string_view line) {
  if (line.empty()) return;
  if (line == "ping") {
    write_line(*conn, "pong");
    return;
  }
  if (line == "drain") {
    request_drain();
    write_line(*conn, "draining");
    return;
  }
  if (line == "stats") {
    write_line(*conn, stats_line());
    return;
  }
  if (options_.control && !common::starts_with(line, "warp ")) {
    // Cluster control/replication ops; nullopt falls through to the normal
    // unknown-verb error from parse_request.
    if (auto reply = options_.control(line)) {
      write_line(*conn, *reply);
      return;
    }
  }
  auto parsed = protocol::parse_request(line);
  if (!parsed) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.parse_errors;
    }
    write_line(*conn, protocol::encode_reply(protocol::make_error_reply(0, parsed.message())));
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.requests;
  }
  {
    std::lock_guard<std::mutex> lock(conn->mutex);
    ++conn->outstanding;
  }
  auto done = [this, conn](const SessionOutcome& outcome) {
    protocol::Reply reply;
    switch (outcome.status) {
      case protocol::ReplyStatus::kOk:
        reply = protocol::make_ok_reply(outcome.id, outcome.entry);
        break;
      case protocol::ReplyStatus::kBusy:
        reply = protocol::make_busy_reply(outcome.id, outcome.retry_after_ms);
        break;
      case protocol::ReplyStatus::kTimeout:
        reply = protocol::make_timeout_reply(outcome.id, outcome.error);
        break;
      case protocol::ReplyStatus::kErr:
        reply = protocol::make_error_reply(outcome.id, outcome.error);
        break;
    }
    reply.node = outcome.node;
    write_line(*conn, protocol::encode_reply(reply));
    std::lock_guard<std::mutex> lock(conn->mutex);
    --conn->outstanding;
    conn->idle.notify_all();
  };
  if (options_.route) {
    options_.route(parsed.value(), std::move(done));
  } else {
    engine_->submit(parsed.value(), std::move(done));
  }
}

bool SocketServer::write_line(Connection& conn, const std::string& line) {
  std::lock_guard<std::mutex> lock(conn.mutex);
  if (conn.dead) return false;
  const std::string out = line + "\n";
  std::size_t off = 0;
  for (int attempt = 0; attempt < options_.io_retries; ++attempt) {
    if (probe("serve.write")) {
      {
        std::lock_guard<std::mutex> stats_lock(mutex_);
        ++stats_.write_faults;
      }
      backoff(attempt);
      continue;
    }
    bool io_error = false;
    while (off < out.size()) {
      const ssize_t n = ::send(conn.fd, out.data() + off, out.size() - off, MSG_NOSIGNAL);
      if (n > 0) {
        off += static_cast<std::size_t>(n);
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      io_error = true;
      break;
    }
    if (!io_error) {
      std::lock_guard<std::mutex> stats_lock(mutex_);
      ++stats_.replies;
      return true;
    }
    backoff(attempt);
  }
  // Budget exhausted: mute the connection (sessions still complete
  // server-side); the client observes a half-open stream, never a crash.
  conn.dead = true;
  std::lock_guard<std::mutex> stats_lock(mutex_);
  ++stats_.write_failures;
  return false;
}

void SocketServer::request_drain() {
  if (drain_requested_.exchange(true)) return;
  engine_->begin_drain();
}

void SocketServer::drain() {
  request_drain();
  // In-flight sessions finish; everything arriving meanwhile is shed busy.
  engine_->drain();
  // The store is write-through (tmp -> fsync -> rename -> dir fsync on
  // every put), so the flush barrier is structurally a no-op — but a real
  // daemon would fsync here, and the fault site keeps that path honest.
  for (int attempt = 0; attempt < options_.io_retries; ++attempt) {
    if (!probe("serve.drain")) break;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.drain_faults;
    }
    backoff(attempt);
  }
  stop();
}

void SocketServer::stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopped_) return;
    stopped_ = true;
  }
  closing_.store(true);
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    if (started_) unlink_endpoint(endpoint_);
  }
  // Finish every admitted session; callbacks write the remaining replies.
  engine_->stop();
  std::vector<std::shared_ptr<Connection>> connections;
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    connections = connections_;
    threads = std::move(threads_);
  }
  for (const auto& conn : connections) ::shutdown(conn->fd, SHUT_RDWR);
  for (std::thread& t : threads) t.join();
  for (const auto& conn : connections) ::close(conn->fd);
  std::lock_guard<std::mutex> lock(mutex_);
  connections_.clear();
}

SocketServerStats SocketServer::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

Client::~Client() { close(); }

common::Status Client::connect(const std::string& spec) {
  auto endpoint = parse_endpoint(spec);
  if (!endpoint) return common::Status::error(endpoint.message());
  auto fd = connect_endpoint(endpoint.value());
  if (!fd) return common::Status::error(fd.message());
  fd_ = fd.value();
  return common::Status::ok();
}

common::Status Client::send_line(const std::string& line) { return send_raw(line + "\n"); }

common::Status Client::send_raw(const std::string& bytes) {
  if (fd_ < 0) return common::Status::error("not connected");
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::send(fd_, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return errno_status("send");
  }
  return common::Status::ok();
}

common::Result<std::string> Client::read_line() {
  using R = common::Result<std::string>;
  if (fd_ < 0) return R::error("not connected");
  for (;;) {
    const std::size_t newline = buffer_.find('\n');
    if (newline != std::string::npos) {
      std::string line = buffer_.substr(0, newline);
      buffer_.erase(0, newline + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      return line;
    }
    char buf[4096];
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n == 0) return R::error("connection closed");
    if (n < 0) {
      if (errno == EINTR) continue;
      return R::error(std::string("recv: ") + std::strerror(errno));
    }
    buffer_.append(buf, static_cast<std::size_t>(n));
  }
}

common::Result<std::string> Client::read_line_for(std::uint64_t timeout_ms) {
  using R = common::Result<std::string>;
  if (fd_ < 0) return R::error("not connected");
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  for (;;) {
    const std::size_t newline = buffer_.find('\n');
    if (newline != std::string::npos) {
      std::string line = buffer_.substr(0, newline);
      buffer_.erase(0, newline + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      return line;
    }
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) return R::error("timeout");
    const auto left =
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now).count();
    pollfd pfd{fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, static_cast<int>(std::max<long long>(1, left)));
    if (ready < 0) {
      if (errno == EINTR) continue;
      return R::error(std::string("poll: ") + std::strerror(errno));
    }
    if (ready == 0) return R::error("timeout");
    char buf[4096];
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n == 0) return R::error("connection closed");
    if (n < 0) {
      if (errno == EINTR) continue;
      return R::error(std::string("recv: ") + std::strerror(errno));
    }
    buffer_.append(buf, static_cast<std::size_t>(n));
  }
}

void Client::shutdown_send() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
}

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buffer_.clear();
}

}  // namespace warp::serve
