#include "common/table.hpp"

#include <algorithm>
#include <sstream>

namespace warp::common {

std::string Table::to_string() const {
  std::vector<std::size_t> widths(header_.size(), 0);
  auto widen = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size() && i < widths.size(); ++i)
      widths[i] = std::max(widths[i], row[i].size());
  };
  widen(header_);
  for (const auto& row : rows_) widen(row);

  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < widths.size(); ++i) {
      const std::string cell = i < row.size() ? row[i] : "";
      if (i == 0) {
        os << cell << std::string(widths[i] - cell.size(), ' ');
      } else {
        os << "  " << std::string(widths[i] - cell.size(), ' ') << cell;
      }
    }
    os << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (auto w : widths) total += w + 2;
  os << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
  return os.str();
}

}  // namespace warp::common
