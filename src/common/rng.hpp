// Deterministic xorshift-based PRNG used by workload generators, the
// annealing placer, and property-based tests. We avoid <random> engines in
// library code so results are bit-identical across standard libraries.
#pragma once

#include <cstdint>

namespace warp::common {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) : state_(seed ? seed : 1) {}

  /// xorshift64* — fast, decent-quality 64-bit generator.
  std::uint64_t next_u64() {
    std::uint64_t x = state_;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    state_ = x;
    return x * 0x2545F4914F6CDD1Dull;
  }

  std::uint32_t next_u32() { return static_cast<std::uint32_t>(next_u64() >> 32); }

  /// Uniform integer in [0, bound) for bound > 0.
  std::uint32_t below(std::uint32_t bound) { return next_u32() % bound; }

  /// Uniform integer in [lo, hi] inclusive.
  std::int32_t range(std::int32_t lo, std::int32_t hi) {
    return lo + static_cast<std::int32_t>(below(static_cast<std::uint32_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double next_double() { return static_cast<double>(next_u64() >> 11) * (1.0 / 9007199254740992.0); }

  bool chance(double p) { return next_double() < p; }

 private:
  std::uint64_t state_;
};

}  // namespace warp::common
