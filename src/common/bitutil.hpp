// Bit-manipulation helpers shared across the warp-processing library.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <bit>

#if defined(__SSE2__)
#include <emmintrin.h>
#endif
#if defined(__AVX2__)
#include <immintrin.h>
#endif

namespace warp::common {

/// Extract bits [lo, lo+width) of `value` (width <= 32).
constexpr std::uint32_t bits(std::uint32_t value, unsigned lo, unsigned width) {
  if (width >= 32) return value >> lo;
  return (value >> lo) & ((1u << width) - 1u);
}

/// Insert `field` (width bits) into bits [lo, lo+width) of `value`.
constexpr std::uint32_t set_bits(std::uint32_t value, unsigned lo, unsigned width,
                                 std::uint32_t field) {
  const std::uint32_t mask = (width >= 32) ? ~0u : ((1u << width) - 1u);
  return (value & ~(mask << lo)) | ((field & mask) << lo);
}

/// Sign-extend the low `width` bits of `value` to 32 bits.
constexpr std::int32_t sign_extend(std::uint32_t value, unsigned width) {
  const unsigned shift = 32u - width;
  return static_cast<std::int32_t>(value << shift) >> shift;
}

/// True if `value` fits in a signed `width`-bit immediate.
constexpr bool fits_signed(std::int64_t value, unsigned width) {
  const std::int64_t lo = -(std::int64_t{1} << (width - 1));
  const std::int64_t hi = (std::int64_t{1} << (width - 1)) - 1;
  return value >= lo && value <= hi;
}

/// Reverse the bit order of a 32-bit word.
constexpr std::uint32_t bit_reverse32(std::uint32_t v) {
  v = ((v >> 1) & 0x55555555u) | ((v & 0x55555555u) << 1);
  v = ((v >> 2) & 0x33333333u) | ((v & 0x33333333u) << 2);
  v = ((v >> 4) & 0x0F0F0F0Fu) | ((v & 0x0F0F0F0Fu) << 4);
  v = ((v >> 8) & 0x00FF00FFu) | ((v & 0x00FF00FFu) << 8);
  return (v >> 16) | (v << 16);
}

/// Ceiling of log2; log2_ceil(1) == 0.
constexpr unsigned log2_ceil(std::uint64_t v) {
  unsigned r = 0;
  std::uint64_t p = 1;
  while (p < v) { p <<= 1; ++r; }
  return r;
}

/// Population count convenience wrapper.
constexpr unsigned popcount32(std::uint32_t v) { return static_cast<unsigned>(std::popcount(v)); }

/// In-place transpose of a 64x64 bit matrix stored as 64 row words, with
/// the plain indexing convention: after the call, m[j] bit i equals the
/// original m[i] bit j. Used by the packed netlist evaluator to move
/// between word-per-iteration and lane-per-bit layouts in O(64 log 64)
/// word operations instead of one shift/mask pair per bit.
///
/// This is the portable scalar reference; transpose64() below dispatches to
/// the SIMD butterfly stages where the target has them (SSE2 on any x86-64
/// build, AVX2 under -DWARP_NATIVE=ON) and is validated against this
/// implementation by tests/bitutil_test.cpp.
inline void transpose64_scalar(std::uint64_t m[64]) {
  std::uint64_t mask = 0x00000000FFFFFFFFull;
  for (unsigned j = 32; j; j >>= 1, mask ^= mask << j) {
    for (unsigned k = 0; k < 64; k = ((k | j) + 1) & ~j) {
      const std::uint64_t t = ((m[k] >> j) ^ m[k | j]) & mask;
      m[k] ^= t << j;
      m[k | j] ^= t;
    }
  }
}

#if defined(__SSE2__)
namespace detail {

// One butterfly stage of the 64x64 transpose at distance J >= 2: exchange
// masked halves between m[k] and m[k|J] for every k with bit J clear. The
// k values come in runs of J consecutive indices, so vector lanes can walk
// them contiguously (two at a time in 128-bit registers).
template <unsigned J>
inline void transpose64_stage_sse2(std::uint64_t* m, std::uint64_t mask) {
  static_assert(J >= 2 && J <= 32);
  const __m128i vmask = _mm_set1_epi64x(static_cast<long long>(mask));
  for (unsigned base = 0; base < 64; base += 2 * J) {
    for (unsigned k = base; k < base + J; k += 2) {
      __m128i a = _mm_loadu_si128(reinterpret_cast<const __m128i*>(m + k));
      __m128i b = _mm_loadu_si128(reinterpret_cast<const __m128i*>(m + k + J));
      const __m128i t =
          _mm_and_si128(_mm_xor_si128(_mm_srli_epi64(a, J), b), vmask);
      a = _mm_xor_si128(a, _mm_slli_epi64(t, J));
      b = _mm_xor_si128(b, t);
      _mm_storeu_si128(reinterpret_cast<__m128i*>(m + k), a);
      _mm_storeu_si128(reinterpret_cast<__m128i*>(m + k + J), b);
    }
  }
}

// The J == 1 stage pairs adjacent words, so the butterfly runs *within* a
// 128-bit register's two lanes: unpack four words into (even, odd) vectors,
// exchange, and re-interleave.
inline void transpose64_stage1_sse2(std::uint64_t* m) {
  const __m128i vmask = _mm_set1_epi64x(0x5555555555555555ll);
  for (unsigned k = 0; k < 64; k += 4) {
    const __m128i v0 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(m + k));
    const __m128i v1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(m + k + 2));
    __m128i a = _mm_unpacklo_epi64(v0, v1);  // m[k],   m[k+2]
    __m128i b = _mm_unpackhi_epi64(v0, v1);  // m[k+1], m[k+3]
    const __m128i t = _mm_and_si128(_mm_xor_si128(_mm_srli_epi64(a, 1), b), vmask);
    a = _mm_xor_si128(a, _mm_slli_epi64(t, 1));
    b = _mm_xor_si128(b, t);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(m + k), _mm_unpacklo_epi64(a, b));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(m + k + 2), _mm_unpackhi_epi64(a, b));
  }
}

#if defined(__AVX2__)
// Four butterflies per iteration for stage distances J >= 4.
template <unsigned J>
inline void transpose64_stage_avx2(std::uint64_t* m, std::uint64_t mask) {
  static_assert(J >= 4 && J <= 32);
  const __m256i vmask = _mm256_set1_epi64x(static_cast<long long>(mask));
  for (unsigned base = 0; base < 64; base += 2 * J) {
    for (unsigned k = base; k < base + J; k += 4) {
      __m256i a = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(m + k));
      __m256i b = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(m + k + J));
      const __m256i t =
          _mm256_and_si256(_mm256_xor_si256(_mm256_srli_epi64(a, J), b), vmask);
      a = _mm256_xor_si256(a, _mm256_slli_epi64(t, J));
      b = _mm256_xor_si256(b, t);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(m + k), a);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(m + k + J), b);
    }
  }
}
#endif  // __AVX2__

}  // namespace detail

inline void transpose64(std::uint64_t m[64]) {
#if defined(__AVX2__)
  detail::transpose64_stage_avx2<32>(m, 0x00000000FFFFFFFFull);
  detail::transpose64_stage_avx2<16>(m, 0x0000FFFF0000FFFFull);
  detail::transpose64_stage_avx2<8>(m, 0x00FF00FF00FF00FFull);
  detail::transpose64_stage_avx2<4>(m, 0x0F0F0F0F0F0F0F0Full);
#else
  detail::transpose64_stage_sse2<32>(m, 0x00000000FFFFFFFFull);
  detail::transpose64_stage_sse2<16>(m, 0x0000FFFF0000FFFFull);
  detail::transpose64_stage_sse2<8>(m, 0x00FF00FF00FF00FFull);
  detail::transpose64_stage_sse2<4>(m, 0x0F0F0F0F0F0F0F0Full);
#endif
  detail::transpose64_stage_sse2<2>(m, 0x3333333333333333ull);
  detail::transpose64_stage1_sse2(m);
}
#else   // !__SSE2__
inline void transpose64(std::uint64_t m[64]) { transpose64_scalar(m); }
#endif  // __SSE2__

/// Upper bound on the `w_words` parameter of the blocked transposes below
/// (sizes their stack scratch; the packed evaluator's widest block is 4).
inline constexpr unsigned kMaxTransposeBlocks = 8;

#if defined(__SSE2__)
namespace detail {

// Interleave w in {2, 4} transposed 64-word groups into plane-major lane
// blocks: out[b*w + g] = in[64*g + b]. The pattern is a pure 64-bit-lane
// shuffle, so SSE2 unpacks do two output words per instruction.
inline void interleave_planes_sse2(const std::uint64_t* in, std::uint64_t* out,
                                   unsigned w_words) {
  if (w_words == 2) {
    for (unsigned b = 0; b < 64; b += 2) {
      const __m128i v0 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(in + b));
      const __m128i v1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(in + 64 + b));
      _mm_storeu_si128(reinterpret_cast<__m128i*>(out + 2 * b),
                       _mm_unpacklo_epi64(v0, v1));
      _mm_storeu_si128(reinterpret_cast<__m128i*>(out + 2 * b + 2),
                       _mm_unpackhi_epi64(v0, v1));
    }
    return;
  }
  for (unsigned b = 0; b < 64; b += 2) {
    const __m128i v0 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(in + b));
    const __m128i v1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(in + 64 + b));
    const __m128i v2 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(in + 128 + b));
    const __m128i v3 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(in + 192 + b));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + 4 * b),
                     _mm_unpacklo_epi64(v0, v1));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + 4 * b + 2),
                     _mm_unpacklo_epi64(v2, v3));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + 4 * b + 4),
                     _mm_unpackhi_epi64(v0, v1));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + 4 * b + 6),
                     _mm_unpackhi_epi64(v2, v3));
  }
}

// Inverse shuffle: out[64*g + b] = in[b*w + g] for w in {2, 4}.
inline void deinterleave_planes_sse2(const std::uint64_t* in, std::uint64_t* out,
                                     unsigned w_words) {
  if (w_words == 2) {
    for (unsigned b = 0; b < 64; b += 2) {
      const __m128i v0 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(in + 2 * b));
      const __m128i v1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(in + 2 * b + 2));
      _mm_storeu_si128(reinterpret_cast<__m128i*>(out + b), _mm_unpacklo_epi64(v0, v1));
      _mm_storeu_si128(reinterpret_cast<__m128i*>(out + 64 + b),
                       _mm_unpackhi_epi64(v0, v1));
    }
    return;
  }
  for (unsigned b = 0; b < 64; b += 2) {
    const __m128i v0 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(in + 4 * b));
    const __m128i v1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(in + 4 * b + 2));
    const __m128i v2 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(in + 4 * b + 4));
    const __m128i v3 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(in + 4 * b + 6));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + b), _mm_unpacklo_epi64(v0, v2));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + 64 + b),
                     _mm_unpackhi_epi64(v0, v2));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + 128 + b),
                     _mm_unpacklo_epi64(v1, v3));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + 192 + b),
                     _mm_unpackhi_epi64(v1, v3));
  }
}

}  // namespace detail
#endif  // __SSE2__

/// Blocked transpose for lane blocks wider than one word. `m` holds
/// `w_words * 64` words in frame-major order (m[f] is the data word of
/// frame f). Afterwards `m` is plane-major: row b occupies the contiguous
/// block m[b*w_words .. b*w_words+w_words), and bit j of block word g is
/// bit b of original frame g*64+j — i.e. each bit owns one contiguous
/// lane block of w_words words. w_words == 1 is exactly transpose64.
///
/// Both the per-group 64x64 transposes and (for the packed evaluator's
/// w_words in {2, 4}) the plane interleave run vectorized; the scalar
/// reference below is kept for the other widths and for validation.
inline void transpose64_blocked(std::uint64_t* m, unsigned w_words) {
  assert(w_words >= 1 && w_words <= kMaxTransposeBlocks);
  if (w_words == 1) {
    transpose64(m);
    return;
  }
  std::uint64_t planes[kMaxTransposeBlocks * 64];
  for (unsigned g = 0; g < w_words; ++g) transpose64(m + 64 * g);
#if defined(__SSE2__)
  if (w_words == 2 || w_words == 4) {
    detail::interleave_planes_sse2(m, planes, w_words);
    std::copy(planes, planes + 64 * w_words, m);
    return;
  }
#endif
  for (unsigned g = 0; g < w_words; ++g) {
    for (unsigned b = 0; b < 64; ++b) planes[b * w_words + g] = m[64 * g + b];
  }
  std::copy(planes, planes + 64 * w_words, m);
}

/// Inverse of transpose64_blocked: plane-major lane blocks back to
/// frame-major words (m[f] bit b = bit (f % 64) of plane b's word f/64).
inline void transpose64_unblocked(std::uint64_t* m, unsigned w_words) {
  assert(w_words >= 1 && w_words <= kMaxTransposeBlocks);
  if (w_words == 1) {
    transpose64(m);
    return;
  }
  std::uint64_t frames[kMaxTransposeBlocks * 64];
#if defined(__SSE2__)
  if (w_words == 2 || w_words == 4) {
    detail::deinterleave_planes_sse2(m, frames, w_words);
    for (unsigned g = 0; g < w_words; ++g) transpose64(frames + 64 * g);
    std::copy(frames, frames + 64 * w_words, m);
    return;
  }
#endif
  for (unsigned g = 0; g < w_words; ++g) {
    for (unsigned b = 0; b < 64; ++b) frames[64 * g + b] = m[b * w_words + g];
    transpose64(frames + 64 * g);
  }
  std::copy(frames, frames + 64 * w_words, m);
}

}  // namespace warp::common
