// Bit-manipulation helpers shared across the warp-processing library.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <bit>

namespace warp::common {

/// Extract bits [lo, lo+width) of `value` (width <= 32).
constexpr std::uint32_t bits(std::uint32_t value, unsigned lo, unsigned width) {
  if (width >= 32) return value >> lo;
  return (value >> lo) & ((1u << width) - 1u);
}

/// Insert `field` (width bits) into bits [lo, lo+width) of `value`.
constexpr std::uint32_t set_bits(std::uint32_t value, unsigned lo, unsigned width,
                                 std::uint32_t field) {
  const std::uint32_t mask = (width >= 32) ? ~0u : ((1u << width) - 1u);
  return (value & ~(mask << lo)) | ((field & mask) << lo);
}

/// Sign-extend the low `width` bits of `value` to 32 bits.
constexpr std::int32_t sign_extend(std::uint32_t value, unsigned width) {
  const unsigned shift = 32u - width;
  return static_cast<std::int32_t>(value << shift) >> shift;
}

/// True if `value` fits in a signed `width`-bit immediate.
constexpr bool fits_signed(std::int64_t value, unsigned width) {
  const std::int64_t lo = -(std::int64_t{1} << (width - 1));
  const std::int64_t hi = (std::int64_t{1} << (width - 1)) - 1;
  return value >= lo && value <= hi;
}

/// Reverse the bit order of a 32-bit word.
constexpr std::uint32_t bit_reverse32(std::uint32_t v) {
  v = ((v >> 1) & 0x55555555u) | ((v & 0x55555555u) << 1);
  v = ((v >> 2) & 0x33333333u) | ((v & 0x33333333u) << 2);
  v = ((v >> 4) & 0x0F0F0F0Fu) | ((v & 0x0F0F0F0Fu) << 4);
  v = ((v >> 8) & 0x00FF00FFu) | ((v & 0x00FF00FFu) << 8);
  return (v >> 16) | (v << 16);
}

/// Ceiling of log2; log2_ceil(1) == 0.
constexpr unsigned log2_ceil(std::uint64_t v) {
  unsigned r = 0;
  std::uint64_t p = 1;
  while (p < v) { p <<= 1; ++r; }
  return r;
}

/// Population count convenience wrapper.
constexpr unsigned popcount32(std::uint32_t v) { return static_cast<unsigned>(std::popcount(v)); }

/// In-place transpose of a 64x64 bit matrix stored as 64 row words, with
/// the plain indexing convention: after the call, m[j] bit i equals the
/// original m[i] bit j. Used by the packed netlist evaluator to move
/// between word-per-iteration and lane-per-bit layouts in O(64 log 64)
/// word operations instead of one shift/mask pair per bit.
inline void transpose64(std::uint64_t m[64]) {
  std::uint64_t mask = 0x00000000FFFFFFFFull;
  for (unsigned j = 32; j; j >>= 1, mask ^= mask << j) {
    for (unsigned k = 0; k < 64; k = ((k | j) + 1) & ~j) {
      const std::uint64_t t = ((m[k] >> j) ^ m[k | j]) & mask;
      m[k] ^= t << j;
      m[k | j] ^= t;
    }
  }
}

/// Upper bound on the `w_words` parameter of the blocked transposes below
/// (sizes their stack scratch; the packed evaluator's widest block is 4).
inline constexpr unsigned kMaxTransposeBlocks = 8;

/// Blocked transpose for lane blocks wider than one word. `m` holds
/// `w_words * 64` words in frame-major order (m[f] is the data word of
/// frame f). Afterwards `m` is plane-major: row b occupies the contiguous
/// block m[b*w_words .. b*w_words+w_words), and bit j of block word g is
/// bit b of original frame g*64+j — i.e. each bit owns one contiguous
/// lane block of w_words words. w_words == 1 is exactly transpose64.
inline void transpose64_blocked(std::uint64_t* m, unsigned w_words) {
  assert(w_words >= 1 && w_words <= kMaxTransposeBlocks);
  if (w_words == 1) {
    transpose64(m);
    return;
  }
  std::uint64_t planes[kMaxTransposeBlocks * 64];
  for (unsigned g = 0; g < w_words; ++g) {
    transpose64(m + 64 * g);
    for (unsigned b = 0; b < 64; ++b) planes[b * w_words + g] = m[64 * g + b];
  }
  std::copy(planes, planes + 64 * w_words, m);
}

/// Inverse of transpose64_blocked: plane-major lane blocks back to
/// frame-major words (m[f] bit b = bit (f % 64) of plane b's word f/64).
inline void transpose64_unblocked(std::uint64_t* m, unsigned w_words) {
  assert(w_words >= 1 && w_words <= kMaxTransposeBlocks);
  if (w_words == 1) {
    transpose64(m);
    return;
  }
  std::uint64_t frames[kMaxTransposeBlocks * 64];
  for (unsigned g = 0; g < w_words; ++g) {
    for (unsigned b = 0; b < 64; ++b) frames[64 * g + b] = m[b * w_words + g];
    transpose64(frames + 64 * g);
  }
  std::copy(frames, frames + 64 * w_words, m);
}

}  // namespace warp::common
