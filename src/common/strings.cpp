#include "common/strings.hpp"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace warp::common {

std::string_view trim(std::string_view s) {
  const char* ws = " \t\r\n";
  const auto b = s.find_first_not_of(ws);
  if (b == std::string_view::npos) return {};
  const auto e = s.find_last_not_of(ws);
  return s.substr(b, e - b + 1);
}

std::vector<std::string_view> split(std::string_view s, std::string_view delims) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  while (start < s.size()) {
    const auto pos = s.find_first_of(delims, start);
    const auto end = (pos == std::string_view::npos) ? s.size() : pos;
    if (end > start) out.push_back(s.substr(start, end - start));
    start = end + 1;
  }
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool equals(std::string_view a, std::string_view b) { return a == b; }

bool parse_int(std::string_view s, long long& out) {
  s = trim(s);
  if (s.empty()) return false;
  bool negative = false;
  if (s.front() == '-' || s.front() == '+') {
    negative = s.front() == '-';
    s.remove_prefix(1);
    if (s.empty()) return false;
  }
  int base = 10;
  if (s.size() > 2 && s[0] == '0' && (s[1] == 'x' || s[1] == 'X')) {
    base = 16;
    s.remove_prefix(2);
  }
  long long value = 0;
  for (char c : s) {
    int digit;
    if (c >= '0' && c <= '9') digit = c - '0';
    else if (base == 16 && c >= 'a' && c <= 'f') digit = c - 'a' + 10;
    else if (base == 16 && c >= 'A' && c <= 'F') digit = c - 'A' + 10;
    else return false;
    value = value * base + digit;
  }
  out = negative ? -value : value;
  return true;
}

std::string format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args2;
  va_copy(args2, args);
  const int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out(static_cast<std::size_t>(n), '\0');
  std::vsnprintf(out.data(), out.size() + 1, fmt, args2);
  va_end(args2);
  return out;
}

}  // namespace warp::common
