// Plain-text table printer used by the bench binaries so every figure/table
// prints in a consistent, diffable format.
#pragma once

#include <string>
#include <vector>

namespace warp::common {

class Table {
 public:
  explicit Table(std::vector<std::string> header) : header_(std::move(header)) {}

  void add_row(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

  /// Render with column alignment; first column left-aligned, rest right-aligned.
  std::string to_string() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace warp::common
