#include "common/fault_injector.hpp"

#include "common/hash.hpp"

namespace warp::common {

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kIoError: return "io_error";
    case FaultKind::kTornWrite: return "torn_write";
    case FaultKind::kCorruptRead: return "corrupt_read";
    case FaultKind::kStageFail: return "stage_fail";
  }
  return "unknown";
}

double FaultInjector::probability(FaultKind kind) const {
  switch (kind) {
    case FaultKind::kIoError: return config_.io_error_p;
    case FaultKind::kTornWrite: return config_.torn_write_p;
    case FaultKind::kCorruptRead: return config_.corrupt_read_p;
    case FaultKind::kStageFail: return config_.stage_fail_p;
  }
  return 0.0;
}

std::uint64_t FaultInjector::mix(std::string_view site, std::uint64_t salt) const {
  Hasher h;
  h.u64(config_.seed).str(site).u64(salt);
  return h.finish().lo;
}

double FaultInjector::uniform(std::string_view site, std::uint64_t salt) const {
  return static_cast<double>(mix(site, salt) >> 11) * (1.0 / 9007199254740992.0);
}

bool FaultInjector::probe(std::string_view site, FaultKind kind) {
  const double p = probability(kind);
  std::lock_guard<std::mutex> lock(mutex_);
  ++probes_;
  // The map transparently finds string_view keys; insertion needs a string.
  auto it = sites_.find(site);
  if (it == sites_.end()) it = sites_.emplace(std::string(site), SiteState{}).first;
  SiteState& state = it->second;
  const std::uint64_t occurrence = state.occurrences++;
  if (p <= 0.0) {
    state.consecutive = 0;
    return false;
  }
  bool fire = uniform(site, occurrence * 8 + static_cast<std::uint64_t>(kind)) < p;
  if (fire && config_.max_consecutive != 0 && state.consecutive >= config_.max_consecutive) {
    fire = false;  // transient-then-success: the site has faulted enough in a row
  }
  if (fire) {
    ++state.consecutive;
    ++state.injected;
    ++injected_;
  } else {
    state.consecutive = 0;
  }
  return fire;
}

void FaultInjector::corrupt(std::string_view site, std::vector<std::uint8_t>& bytes) {
  if (bytes.empty()) return;
  std::uint64_t occurrence;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = sites_.find(site);
    if (it == sites_.end()) it = sites_.emplace(std::string(site), SiteState{}).first;
    occurrence = it->second.occurrences++;
  }
  const unsigned flips = 1 + static_cast<unsigned>(mix(site, occurrence * 16 + 1) % 4);
  for (unsigned i = 0; i < flips; ++i) {
    const std::uint64_t r = mix(site, occurrence * 16 + 2 + i);
    const std::size_t pos = static_cast<std::size_t>(r % bytes.size());
    const std::uint8_t bit = static_cast<std::uint8_t>(1u << ((r >> 32) % 8));
    bytes[pos] ^= bit;
  }
}

std::size_t FaultInjector::torn_length(std::string_view site, std::size_t full) {
  if (full == 0) return 0;
  std::uint64_t occurrence;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = sites_.find(site);
    if (it == sites_.end()) it = sites_.emplace(std::string(site), SiteState{}).first;
    occurrence = it->second.occurrences++;
  }
  // Keep between half and all-but-one byte: a nearly complete file is the
  // hardest torn write to detect.
  const std::uint64_t r = mix(site, occurrence * 32 + 5);
  const std::size_t lo = full / 2;
  return lo + static_cast<std::size_t>(r % (full - lo));
}

FaultStats FaultInjector::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  FaultStats stats;
  stats.probes = probes_;
  stats.injected = injected_;
  for (const auto& [site, state] : sites_) {
    if (state.injected > 0) stats.injected_by_site[site] = state.injected;
  }
  return stats;
}

}  // namespace warp::common
