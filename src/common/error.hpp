// Error reporting for the warp library. Tool-flow failures (bad assembly,
// unsuitable kernels, unroutable designs) are reported via Status/Result so
// callers can fall back to software execution — exactly what a real warp
// processor must do when ROCPART rejects a region.
#pragma once

#include <optional>
#include <stdexcept>
#include <string>
#include <utility>

namespace warp::common {

/// Thrown only for programming errors (out-of-range access, broken
/// invariants), never for expected tool-flow failures.
class InternalError : public std::logic_error {
 public:
  explicit InternalError(const std::string& what) : std::logic_error(what) {}
};

/// Lightweight status: ok or an error message.
class Status {
 public:
  Status() = default;
  static Status ok() { return Status(); }
  static Status error(std::string message) { return Status(std::move(message)); }

  bool is_ok() const { return !message_.has_value(); }
  explicit operator bool() const { return is_ok(); }
  const std::string& message() const {
    static const std::string kOk = "ok";
    return message_ ? *message_ : kOk;
  }

 private:
  explicit Status(std::string message) : message_(std::move(message)) {}
  std::optional<std::string> message_;
};

/// Result<T>: value or error message.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT: implicit by design
  static Result error(std::string message) { return Result(Status::error(std::move(message))); }

  bool is_ok() const { return value_.has_value(); }
  explicit operator bool() const { return is_ok(); }

  const T& value() const& {
    if (!value_) throw InternalError("Result::value on error: " + status_.message());
    return *value_;
  }
  T&& value() && {
    if (!value_) throw InternalError("Result::value on error: " + status_.message());
    return std::move(*value_);
  }
  const std::string& message() const { return status_.message(); }

 private:
  explicit Result(Status st) : status_(std::move(st)) {}
  Status status_ = Status::ok();
  std::optional<T> value_;
};

}  // namespace warp::common
