// Bounds-checked binary serialization primitives.
//
// The persistent artifact store (src/partition/disk_store.*) writes typed
// stage artifacts to disk and must survive any byte-level damage to what it
// reads back: truncation, bit flips, hostile lengths. ByteWriter builds a
// little-endian byte stream field by field; ByteReader is its mirror that
// *never* trusts the stream — every primitive checks the remaining length,
// every count is validated against what could possibly fit in the bytes
// left, and the first violation latches a failure flag instead of touching
// out-of-range memory. Decoders check `ok()` (or use the require helpers)
// and treat failure as corruption.
//
// All integers are fixed-width little-endian; doubles travel as their IEEE
// bit pattern, so round-trips are bit-exact and digests computed over
// decoded artifacts match the originals.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "common/hash.hpp"

namespace warp::common {

class ByteWriter {
 public:
  ByteWriter& u8(std::uint8_t v) {
    bytes_.push_back(v);
    return *this;
  }
  ByteWriter& u16(std::uint16_t v) { return fixed(v, 2); }
  ByteWriter& u32(std::uint32_t v) { return fixed(v, 4); }
  ByteWriter& u64(std::uint64_t v) { return fixed(v, 8); }
  ByteWriter& i8(std::int8_t v) { return u8(static_cast<std::uint8_t>(v)); }
  ByteWriter& i32(std::int32_t v) { return u32(static_cast<std::uint32_t>(v)); }
  ByteWriter& i64(std::int64_t v) { return u64(static_cast<std::uint64_t>(v)); }
  ByteWriter& boolean(bool v) { return u8(v ? 1 : 0); }
  ByteWriter& f64(double v) {
    std::uint64_t bits;
    static_assert(sizeof bits == sizeof v);
    std::memcpy(&bits, &v, sizeof bits);
    return u64(bits);
  }
  ByteWriter& str(std::string_view s) {
    u64(s.size());
    bytes_.insert(bytes_.end(), s.begin(), s.end());
    return *this;
  }
  ByteWriter& digest(const Digest& d) { return u64(d.hi).u64(d.lo); }
  ByteWriter& raw(const void* data, std::size_t n) {
    const auto* p = static_cast<const std::uint8_t*>(data);
    bytes_.insert(bytes_.end(), p, p + n);
    return *this;
  }

  const std::vector<std::uint8_t>& bytes() const { return bytes_; }
  std::vector<std::uint8_t> take() { return std::move(bytes_); }
  std::size_t size() const { return bytes_.size(); }

 private:
  ByteWriter& fixed(std::uint64_t v, unsigned width) {
    for (unsigned i = 0; i < width; ++i) {
      bytes_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
    return *this;
  }
  std::vector<std::uint8_t> bytes_;
};

/// Non-owning reader over an immutable byte range. Any out-of-bounds read or
/// failed expectation latches `ok() == false`; after that every read returns
/// a zero value and the cursor stops moving, so decoders can run to the end
/// and check ok() once (or bail early).
class ByteReader {
 public:
  ByteReader(const std::uint8_t* data, std::size_t size) : data_(data), size_(size) {}
  explicit ByteReader(const std::vector<std::uint8_t>& bytes)
      : ByteReader(bytes.data(), bytes.size()) {}

  bool ok() const { return ok_; }
  std::size_t remaining() const { return size_ - pos_; }
  std::size_t position() const { return pos_; }
  /// Decoders call this last: a valid stream is fully consumed.
  bool at_end() const { return ok_ && pos_ == size_; }

  std::uint8_t u8() { return static_cast<std::uint8_t>(fixed(1)); }
  std::uint16_t u16() { return static_cast<std::uint16_t>(fixed(2)); }
  std::uint32_t u32() { return static_cast<std::uint32_t>(fixed(4)); }
  std::uint64_t u64() { return fixed(8); }
  std::int8_t i8() { return static_cast<std::int8_t>(u8()); }
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  bool boolean() {
    const std::uint8_t v = u8();
    if (v > 1) fail();
    return v == 1;
  }
  double f64() {
    const std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }
  Digest digest() {
    Digest d;
    d.hi = u64();
    d.lo = u64();
    return d;
  }
  std::string str() {
    const std::uint64_t n = length(1);
    if (!ok_) return {};
    std::string s(reinterpret_cast<const char*>(data_ + pos_), static_cast<std::size_t>(n));
    pos_ += static_cast<std::size_t>(n);
    return s;
  }

  /// Read an element count that is followed by >= `min_elem_bytes` bytes per
  /// element; a count the remaining bytes cannot possibly hold fails
  /// immediately (hostile-length guard — no giant allocations).
  std::uint64_t length(std::size_t min_elem_bytes) {
    const std::uint64_t n = u64();
    if (!ok_) return 0;
    if (min_elem_bytes != 0 && n > remaining() / min_elem_bytes) {
      fail();
      return 0;
    }
    return n;
  }

  /// Expect an exact value (magic numbers, versions); mismatch fails.
  void expect_u32(std::uint32_t want) {
    if (u32() != want) fail();
  }
  void expect_u64(std::uint64_t want) {
    if (u64() != want) fail();
  }

  /// Latch a semantic failure discovered by the decoder itself (bad enum
  /// value, dangling index, ...).
  void fail() { ok_ = false; }
  /// fail() unless `cond` — for decoder-side invariant checks.
  void require(bool cond) {
    if (!cond) fail();
  }

 private:
  std::uint64_t fixed(unsigned width) {
    if (!ok_ || size_ - pos_ < width) {
      ok_ = false;
      return 0;
    }
    std::uint64_t v = 0;
    for (unsigned i = 0; i < width; ++i) {
      v |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
    }
    pos_ += width;
    return v;
  }

  const std::uint8_t* data_ = nullptr;
  std::size_t size_ = 0;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

/// Content checksum of a byte range (the store's trailer checksum). FNV-1a
/// is sequential, so any flip, swap, insertion or truncation changes it.
inline Digest bytes_checksum(const std::uint8_t* data, std::size_t size) {
  Hasher h;
  h.str(std::string_view(reinterpret_cast<const char*>(data), size));
  return h.finish();
}

}  // namespace warp::common
