// Small string helpers used by the assembler and report printers.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace warp::common {

/// Strip leading/trailing whitespace.
std::string_view trim(std::string_view s);

/// Split on any of the characters in `delims`, dropping empty fields.
std::vector<std::string_view> split(std::string_view s, std::string_view delims);

/// True if `s` starts with `prefix`.
bool starts_with(std::string_view s, std::string_view prefix);

/// Case-sensitive equality of string_views (explicit name for clarity at call sites).
bool equals(std::string_view a, std::string_view b);

/// Parse a decimal or 0x-prefixed hexadecimal (optionally negative) integer.
/// Returns false on malformed input.
bool parse_int(std::string_view s, long long& out);

/// printf-style formatting into a std::string.
std::string format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace warp::common
