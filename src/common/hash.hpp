// Content hashing for CAD artifacts.
//
// The staged partition pipeline (src/partition/) keys its artifact cache on
// *content* hashes of stage inputs: two artifacts hash equal iff the fields
// that determine downstream tool behavior are equal — never because they
// happen to share pointers, allocation history, or container iteration
// order. Hashing is therefore explicit per field (no memcpy of structs, no
// padding bytes) and canonicalizing call sites sort order-insensitive
// collections (output ports by name, cover cubes by value) before feeding
// the hasher.
//
// The digest is 128 bits built from two independent FNV-1a-64 lanes with a
// splitmix finalizer — not cryptographic, but wide enough that accidental
// collisions between the handful of artifacts a simulation produces are not
// a practical concern.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace warp::common {

struct Digest {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  bool operator==(const Digest&) const = default;

  /// Stable hex rendering ("hhhhhhhhhhhhhhhh:llllllllllllllll").
  std::string to_string() const {
    static constexpr char kHex[] = "0123456789abcdef";
    char buf[33];
    for (unsigned i = 0; i < 16; ++i) {
      buf[15 - i] = kHex[(hi >> (4 * i)) & 0xF];
      buf[32 - i] = kHex[(lo >> (4 * i)) & 0xF];
    }
    buf[16] = ':';
    return std::string(buf, 33);
  }
};

/// Incremental field-by-field hasher. Every integral field is widened to 8
/// bytes before mixing so the digest is independent of the field's declared
/// width, and floating-point fields are mixed by bit pattern (the pipeline
/// only ever hashes doubles that are themselves deterministic).
class Hasher {
 public:
  Hasher() = default;

  Hasher& u64(std::uint64_t v) {
    mix(v);
    return *this;
  }
  Hasher& i64(std::int64_t v) { return u64(static_cast<std::uint64_t>(v)); }
  Hasher& u32(std::uint32_t v) { return u64(v); }
  Hasher& i32(std::int32_t v) { return i64(v); }
  Hasher& boolean(bool v) { return u64(v ? 1 : 0); }
  Hasher& f64(double v) {
    std::uint64_t bits;
    static_assert(sizeof bits == sizeof v);
    std::memcpy(&bits, &v, sizeof bits);
    return u64(bits);
  }
  Hasher& str(std::string_view s) {
    u64(s.size());
    for (const char c : s) mix_byte(static_cast<unsigned char>(c));
    return *this;
  }
  Hasher& digest(const Digest& d) { return u64(d.hi).u64(d.lo); }

  Digest finish() const {
    // splitmix64-style avalanche so short inputs still spread over all bits.
    return {avalanche(a_ ^ 0x9E3779B97F4A7C15ull), avalanche(b_ ^ 0xC2B2AE3D27D4EB4Full)};
  }

 private:
  static constexpr std::uint64_t kPrimeA = 0x100000001B3ull;       // FNV-1a 64 prime
  static constexpr std::uint64_t kPrimeB = 0x9E3779B97F4A7C15ull;  // odd (golden ratio)

  void mix(std::uint64_t v) {
    for (unsigned i = 0; i < 8; ++i) {
      mix_byte(static_cast<unsigned char>(v >> (8 * i)));
    }
  }
  void mix_byte(unsigned char c) {
    a_ = (a_ ^ c) * kPrimeA;
    b_ = (b_ ^ c) * kPrimeB;
  }
  static std::uint64_t avalanche(std::uint64_t x) {
    x ^= x >> 30;
    x *= 0xBF58476D1CE4E5B9ull;
    x ^= x >> 27;
    x *= 0x94D049BB133111EBull;
    x ^= x >> 31;
    return x;
  }

  std::uint64_t a_ = 0xCBF29CE484222325ull;  // FNV-1a 64 offset basis
  std::uint64_t b_ = 0x84222325CBF29CE4ull;
};

}  // namespace warp::common
