// Deterministic fault injection for the warp pipeline and artifact store.
//
// The warp-processing transparency contract (the whole premise of the
// paper) is that a failure anywhere in the on-chip CAD flow leaves the
// binary executing in software with no observable difference beyond lost
// speedup. To test that contract end-to-end, the FaultInjector is threaded
// through the persistent artifact store, every partition-pipeline stage and
// the warpd serving stack — "serve.accept"/"serve.read"/"serve.write" on
// the socket front end, "serve.admit" at engine admission (sheds the
// request as a deterministic "busy"; only armed when admission caps are
// enabled) and "serve.drain" at the graceful-drain flush barrier, all
// kIoError — see serve/server.hpp and serve/warpd.hpp — as named probe
// *sites*. A probe asks "does fault kind K fire here?", and
// the answer is a pure function of (seed, site, per-site occurrence count)
// — so a fault schedule is reproducible from its seed alone, across runs
// and platforms.
//
// Probe kinds map to the failure modes a long-running store/serving daemon
// actually sees:
//   kIoError     — an open/read/write/rename fails (transient; the caller
//                  retries with bounded backoff and then degrades);
//   kTornWrite   — a crash mid-put leaves a truncated file under the
//                  *final* name (what an unsynced rename can expose);
//   kCorruptRead — loaded bytes are corrupted in flight (bit rot, DMA
//                  error) — the checksum trailer must catch it;
//   kStageFail   — a pipeline stage's host computation fails outright.
//
// Transient-then-success semantics: `max_consecutive` caps how many times
// in a row one site can fault (the occurrence counter keeps advancing, the
// *answer* is forced to success). Callers whose retry budget exceeds the
// cap therefore always converge to the fault-free result — which is what
// lets the determinism gates assert bit-identical MultiWarpEntry tables
// under any injected schedule. max_consecutive == 0 removes the cap
// (persistent faults), used by the tests that pin the software-fallback
// path itself.
//
// Thread safety: all probes take an internal lock. Under a threaded engine
// the per-site occurrence order depends on host scheduling, so *which*
// probe call faults is schedule-dependent — but every injected fault is
// recoverable by construction, so final results stay deterministic.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace warp::common {

enum class FaultKind : std::uint8_t {
  kIoError = 1,
  kTornWrite = 2,
  kCorruptRead = 3,
  kStageFail = 4,
};

const char* fault_kind_name(FaultKind kind);

struct FaultConfig {
  std::uint64_t seed = 1;
  double io_error_p = 0.0;
  double torn_write_p = 0.0;
  double corrupt_read_p = 0.0;
  double stage_fail_p = 0.0;
  /// Max injected faults in a row at one site before the next probe there is
  /// forced to succeed; 0 = unlimited (persistent faults).
  unsigned max_consecutive = 3;

  /// A moderate all-sites transient profile for sweeps: every kind enabled,
  /// convergence guaranteed (max_consecutive 2 < every caller's retry
  /// budget).
  static FaultConfig transient_sweep(std::uint64_t seed) {
    FaultConfig config;
    config.seed = seed;
    config.io_error_p = 0.10;
    config.torn_write_p = 0.10;
    config.corrupt_read_p = 0.05;
    config.stage_fail_p = 0.05;
    config.max_consecutive = 2;
    return config;
  }
};

struct FaultStats {
  std::uint64_t probes = 0;
  std::uint64_t injected = 0;
  std::map<std::string, std::uint64_t> injected_by_site;
};

class FaultInjector {
 public:
  explicit FaultInjector(FaultConfig config) : config_(config) {}

  /// Does fault `kind` fire at `site` now? Advances the site's occurrence
  /// counter either way.
  bool probe(std::string_view site, FaultKind kind);

  /// Deterministic corruption for a fired kCorruptRead: flips 1..4 bytes of
  /// `bytes` at positions derived from (seed, site, occurrence). No-op on an
  /// empty buffer.
  void corrupt(std::string_view site, std::vector<std::uint8_t>& bytes);

  /// Deterministic truncation point for a fired kTornWrite: somewhere in
  /// [0, full), biased toward keeping most of the file (the nastiest case —
  /// a mostly-complete artifact must still be rejected).
  std::size_t torn_length(std::string_view site, std::size_t full);

  FaultStats stats() const;
  const FaultConfig& config() const { return config_; }

 private:
  struct SiteState {
    std::uint64_t occurrences = 0;
    unsigned consecutive = 0;
    std::uint64_t injected = 0;
  };

  double probability(FaultKind kind) const;
  /// Uniform [0,1) from (seed, site, salt) — the one source of randomness.
  double uniform(std::string_view site, std::uint64_t salt) const;
  std::uint64_t mix(std::string_view site, std::uint64_t salt) const;

  mutable std::mutex mutex_;
  FaultConfig config_;
  std::map<std::string, SiteState, std::less<>> sites_;
  std::uint64_t probes_ = 0;
  std::uint64_t injected_ = 0;
};

}  // namespace warp::common
